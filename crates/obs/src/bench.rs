//! A small wall-clock benchmark harness (the workspace's replacement for
//! Criterion, which cannot be vendored under the offline dependency
//! policy).
//!
//! ```no_run
//! use cnnre_obs::bench::BenchGroup;
//!
//! let mut g = BenchGroup::new("fig3");
//! g.sample_size(10);
//! g.bench_function("trace_generation", || {
//!     // workload
//! });
//! g.finish();
//! ```
//!
//! Each benchmark runs one untimed warm-up iteration followed by
//! `sample_size` timed iterations, and reports min / median / mean. Results
//! are also recorded into the global metric registry (when enabled) under
//! `bench.<group>.<name>.{min,median,mean}_ns`, so `--out` exporting picks
//! them up.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name within the group.
    pub name: String,
    /// Fastest timed iteration.
    pub min_ns: u64,
    /// Median timed iteration.
    pub median_ns: u64,
    /// Mean timed iteration.
    pub mean_ns: u64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// A named group of benchmarks, printed as a table by [`BenchGroup::finish`].
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    results: Vec<BenchResult>,
}

fn human(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

impl BenchGroup {
    /// A group named `name` with the default sample size (10).
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            sample_size: 10,
            results: Vec::new(),
        }
    }

    /// Sets the number of timed iterations per benchmark.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` (its return value is passed through [`black_box`] so the
    /// optimizer cannot delete the work) and records the result.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Self {
        black_box(f()); // warm-up
        let mut samples_ns: Vec<u64> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        samples_ns.sort_unstable();
        let n = samples_ns.len();
        let result = BenchResult {
            name: name.to_owned(),
            min_ns: samples_ns[0],
            median_ns: samples_ns[n / 2],
            mean_ns: (samples_ns.iter().map(|&x| u128::from(x)).sum::<u128>() / n as u128) as u64,
            samples: n,
        };
        if crate::enabled() {
            let reg = crate::global();
            let key = format!("bench.{}.{}", self.name, result.name);
            reg.counter(&format!("{key}.min.wall_ns"))
                .add(result.min_ns);
            reg.counter(&format!("{key}.median.wall_ns"))
                .add(result.median_ns);
            reg.counter(&format!("{key}.mean.wall_ns"))
                .add(result.mean_ns);
        }
        self.results.push(result);
        self
    }

    /// The results recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the group's summary table to stdout and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        let width = self
            .results
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(9)
            .max(9);
        println!();
        println!("group {}: {} samples/bench", self.name, self.sample_size);
        println!(
            "{:width$}  {:>12}  {:>12}  {:>12}",
            "benchmark", "min", "median", "mean"
        );
        for r in &self.results {
            println!(
                "{:width$}  {:>12}  {:>12}  {:>12}",
                r.name,
                human(r.min_ns),
                human(r.median_ns),
                human(r.mean_ns)
            );
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_ordered_and_counted() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(5);
        g.bench_function("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let rs = g.finish();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].samples, 5);
        assert!(rs[0].min_ns <= rs[0].median_ns);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(500), "500 ns");
        assert!(human(50_000).ends_with("µs"));
        assert!(human(50_000_000).ends_with("ms"));
        assert!(human(5_000_000_000).ends_with('s'));
    }
}
