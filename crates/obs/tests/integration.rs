//! Integration tests for the observability layer: concurrency
//! losslessness, snapshot determinism, and histogram edge cases.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;

use cnnre_obs::{global, set_enabled};

/// Serializes tests that toggle the process-global enabled flag or mutate
/// the global registry, so the parallel test runner cannot interleave them.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = lock();
    set_enabled(true);
    global().reset();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                let c = global().counter("it.concurrent.counter");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(
        global().counter("it.concurrent.counter").get(),
        THREADS as u64 * PER_THREAD,
        "concurrent increments must not be lost"
    );
    global().reset();
    set_enabled(false);
}

#[test]
fn concurrent_series_pushes_are_lossless() {
    let _guard = lock();
    set_enabled(true);
    global().reset();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_500;
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let series = global().series("it.concurrent.series");
                for i in 0..PER_THREAD {
                    series.push((t * PER_THREAD + i) as f64);
                }
            });
        }
    });
    let values = global().series("it.concurrent.series").values();
    assert_eq!(values.len(), THREADS * PER_THREAD);
    // Every pushed value arrived exactly once (order is scheduling-defined).
    let mut sorted = values;
    sorted.sort_by(f64::total_cmp);
    for (i, v) in sorted.iter().enumerate() {
        assert_eq!(*v, i as f64);
    }
    global().reset();
    set_enabled(false);
}

/// A deterministic pseudo-workload: same calls, same values, every run.
fn seeded_workload(seed: u64) {
    let mut state = seed;
    let mut next = move || {
        // SplitMix64 step — deterministic, no external RNG needed here.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..100 {
        global().counter("it.det.counter").add(next() % 7);
        global()
            .series("it.det.series")
            .push((next() % 1000) as f64 / 10.0);
        global()
            .histogram("it.det.hist")
            .record((next() % 500) as f64);
    }
    global().gauge("it.det.gauge").set((next() % 100) as f64);
}

#[test]
fn identical_seeded_runs_export_byte_identical_snapshots() {
    let _guard = lock();
    set_enabled(true);

    global().reset();
    seeded_workload(42);
    let first = global().snapshot().to_json(false);

    global().reset();
    seeded_workload(42);
    let second = global().snapshot().to_json(false);

    assert_eq!(
        first, second,
        "deterministic runs must export identical bytes"
    );
    assert!(first.contains("it.det.counter"));

    // A different seed must actually change the export (the comparison
    // above is not vacuous).
    global().reset();
    seeded_workload(43);
    let third = global().snapshot().to_json(false);
    assert_ne!(first, third);

    global().reset();
    set_enabled(false);
}

#[test]
fn wall_clock_metrics_are_excluded_from_deterministic_export() {
    let _guard = lock();
    set_enabled(true);
    global().reset();
    global().counter("it.span.wall_ns").add(123_456);
    global().counter("it.span.calls").add(1);
    let deterministic = global().snapshot().to_json(false);
    let full = global().snapshot().to_json(true);
    assert!(!deterministic.contains("it.span.wall_ns"));
    assert!(deterministic.contains("it.span.calls"));
    assert!(full.contains("it.span.wall_ns"));
    global().reset();
    set_enabled(false);
}

#[test]
fn histogram_percentile_edge_cases() {
    let _guard = lock();
    set_enabled(true);
    global().reset();

    // Empty histogram: no quantiles, and it is omitted from snapshots.
    let h = global().histogram("it.hist.empty");
    assert_eq!(h.quantile(0.5), None);
    assert!(global().snapshot().get("it.hist.empty").is_none());

    // Single sample: every quantile is that sample.
    let h1 = global().histogram("it.hist.one");
    h1.record(7.5);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h1.quantile(q), Some(7.5), "q={q}");
    }

    // Two samples: low quantiles take the first, high quantiles the second.
    let h2 = global().histogram("it.hist.two");
    h2.record(10.0);
    h2.record(20.0);
    assert_eq!(h2.quantile(0.5), Some(10.0));
    assert_eq!(h2.quantile(0.51), Some(20.0));
    assert_eq!(h2.quantile(1.0), Some(20.0));

    // 1..=100: nearest-rank percentiles land on exact values regardless of
    // insertion order.
    let h100 = global().histogram("it.hist.hundred");
    for v in (1..=100).rev() {
        h100.record(f64::from(v));
    }
    assert_eq!(h100.quantile(0.50), Some(50.0));
    assert_eq!(h100.quantile(0.90), Some(90.0));
    assert_eq!(h100.quantile(0.99), Some(99.0));
    assert_eq!(h100.quantile(1.0), Some(100.0));

    global().reset();
    set_enabled(false);
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = lock();
    set_enabled(false);
    global().reset();
    global().counter("it.disabled.counter").add(5);
    global().series("it.disabled.series").push(1.0);
    global().histogram("it.disabled.hist").record(1.0);
    assert_eq!(global().counter("it.disabled.counter").get(), 0);
    assert!(global().series("it.disabled.series").values().is_empty());
    assert_eq!(global().histogram("it.disabled.hist").quantile(0.5), None);
    global().reset();
}
