//! The attack-progress timeline SVG.
//!
//! Four stacked charts, each rendered only when its data exists in the
//! stream:
//!
//! 1. **layer boundaries** — tick marks over the trace's cycle axis, from
//!    the `LayerBoundary` events of the last structure-attack run;
//! 2. **candidates per layer** — one bar per observed node with the
//!    distinct surviving candidate count (`LayerChained`);
//! 3. **enumeration progress** — the `CandidatesNarrowed` root-progress
//!    (basis points) as a polyline over sample order, with the remaining
//!    branch estimate as hover text;
//! 4. **oracle queries** — cumulative victim queries per recovered weight
//!    (`WeightRecovered`), the paper's Fig. 7 cost axis.
//!
//! All coordinates are integer arithmetic over wire values — byte-identical
//! output for identical streams.

use crate::replay::{ReplayState, RunState};

const WIDTH: u64 = 900;
const CHART_H: u64 = 120;
const PAD: u64 = 40;
const TITLE_H: u64 = 24;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Svg {
    body: String,
    y: u64,
}

impl Svg {
    fn new() -> Self {
        Self {
            body: String::new(),
            y: PAD,
        }
    }

    fn title(&mut self, text: &str) {
        self.body.push_str(&format!(
            "  <text x=\"{PAD}\" y=\"{}\" font-weight=\"bold\">{}</text>\n",
            self.y + 16,
            esc(text)
        ));
        self.y += TITLE_H;
    }

    fn chart_frame(&mut self) -> (u64, u64, u64) {
        let (x0, y0, w) = (PAD, self.y, WIDTH - 2 * PAD);
        self.body.push_str(&format!(
            "  <rect x=\"{x0}\" y=\"{y0}\" width=\"{w}\" height=\"{CHART_H}\" fill=\"#fafafa\" \
             stroke=\"#ccc\"/>\n"
        ));
        self.y += CHART_H + PAD;
        (x0, y0, w)
    }
}

fn boundaries_chart(svg: &mut Svg, run: &RunState) {
    if run.boundaries.is_empty() {
        return;
    }
    svg.title(&format!(
        "layer boundaries over trace cycles ({})",
        run.label
    ));
    let (x0, y0, w) = svg.chart_frame();
    let max_cycle = run
        .boundaries
        .iter()
        .map(|&(_, c, _)| c)
        .max()
        .unwrap_or(1)
        .max(run.last_cycle)
        .max(1);
    for &(index, cycle, signal) in &run.boundaries {
        let x = x0 + cycle * w / max_cycle;
        let color = if signal == "raw" { "#c33" } else { "#39c" };
        svg.body.push_str(&format!(
            "  <line x1=\"{x}\" y1=\"{y0}\" x2=\"{x}\" y2=\"{}\" stroke=\"{color}\"/>\n",
            y0 + CHART_H
        ));
        svg.body.push_str(&format!(
            "  <text x=\"{x}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">b{index}@{cycle}</text>\n",
            y0 + CHART_H + 14
        ));
    }
}

fn candidates_chart(svg: &mut Svg, run: &RunState) {
    if run.chained.is_empty() {
        return;
    }
    svg.title("distinct surviving candidates per observed layer");
    let (x0, y0, w) = svg.chart_frame();
    let n = run.chained.len() as u64;
    let max = run.chained.values().copied().max().unwrap_or(1).max(1);
    let slot = w / n.max(1);
    for (i, (layer, distinct)) in run.chained.iter().enumerate() {
        let bar_h = distinct * (CHART_H - 20) / max;
        let bx = x0 + i as u64 * slot + slot / 4;
        let by = y0 + CHART_H - bar_h;
        svg.body.push_str(&format!(
            "  <rect x=\"{bx}\" y=\"{by}\" width=\"{}\" height=\"{bar_h}\" fill=\"#7a7\" \
             stroke=\"#363\"/>\n",
            slot / 2
        ));
        svg.body.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">n{layer}: {distinct}</text>\n",
            bx + slot / 4,
            by.saturating_sub(4).max(y0 + 10)
        ));
    }
}

fn polyline(points: &[(u64, u64)]) -> String {
    points
        .iter()
        .map(|&(x, y)| format!("{x},{y}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn narrowing_chart(svg: &mut Svg, run: &RunState) {
    if run.narrowing.is_empty() {
        return;
    }
    let last = run.narrowing.last().map(|s| s.eta_branches).unwrap_or(0);
    svg.title(&format!(
        "top-level enumeration progress (final ETA {last} branches)"
    ));
    let (x0, y0, w) = svg.chart_frame();
    let n = run.narrowing.len() as u64;
    let points: Vec<(u64, u64)> = run
        .narrowing
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let x = x0 + (i as u64) * w / n.max(1);
            let y = y0 + CHART_H - s.root_pct_bp.min(10_000) * CHART_H / 10_000;
            (x, y)
        })
        .collect();
    svg.body.push_str(&format!(
        "  <polyline points=\"{}\" fill=\"none\" stroke=\"#36c\" stroke-width=\"2\"/>\n",
        polyline(&points)
    ));
    svg.body.push_str(&format!(
        "  <text x=\"{}\" y=\"{}\" font-size=\"10\">100%</text>\n",
        x0 + 4,
        y0 + 12
    ));
}

fn weights_chart(svg: &mut Svg, run: &RunState) {
    if run.weights.is_empty() {
        return;
    }
    let total = run.weights.last().map(|s| s.queries).unwrap_or(0);
    svg.title(&format!(
        "oracle queries per recovered weight (total {total})"
    ));
    let (x0, y0, w) = svg.chart_frame();
    let n = run.weights.len() as u64;
    let max_q = run
        .weights
        .iter()
        .map(|s| s.queries)
        .max()
        .unwrap_or(1)
        .max(1);
    let points: Vec<(u64, u64)> = run
        .weights
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let x = x0 + (i as u64) * w / n.max(1);
            let y = y0 + CHART_H - s.queries * CHART_H / max_q;
            (x, y)
        })
        .collect();
    svg.body.push_str(&format!(
        "  <polyline points=\"{}\" fill=\"none\" stroke=\"#a3a\" stroke-width=\"2\"/>\n",
        polyline(&points)
    ));
}

fn defenses_note(svg: &mut Svg, state: &ReplayState) {
    let mut notes: Vec<String> = Vec::new();
    for run in &state.runs {
        for (kind, input, output) in &run.defenses {
            notes.push(format!("defense {kind}: {input} -> {output} events"));
        }
    }
    if notes.is_empty() {
        return;
    }
    for note in notes {
        svg.body.push_str(&format!(
            "  <text x=\"{PAD}\" y=\"{}\" font-size=\"11\" fill=\"#933\">{}</text>\n",
            svg.y + 12,
            esc(&note)
        ));
        svg.y += 18;
    }
    svg.y += PAD / 2;
}

/// Renders the whole-stream progress timeline.
#[must_use]
pub fn render_timeline_svg(state: &ReplayState) -> String {
    let mut svg = Svg::new();
    svg.title(&format!(
        "attack telemetry: {} events, {} runs",
        state.events,
        state.runs.len()
    ));
    svg.y += PAD / 2;
    defenses_note(&mut svg, state);
    // Charts come from the most informative run of each kind.
    if let Some(run) = state.runs.iter().rev().find(|r| !r.boundaries.is_empty()) {
        boundaries_chart(&mut svg, run);
    }
    if let Some(run) = state.runs.iter().rev().find(|r| !r.chained.is_empty()) {
        candidates_chart(&mut svg, run);
    }
    if let Some(run) = state.runs.iter().rev().find(|r| !r.narrowing.is_empty()) {
        narrowing_chart(&mut svg, run);
    }
    if let Some(run) = state.runs.iter().rev().find(|r| !r.weights.is_empty()) {
        weights_chart(&mut svg, run);
    }
    let height = svg.y + PAD;
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {WIDTH} {height}\" font-family=\"monospace\" font-size=\"12\">\n{}</svg>\n",
        svg.body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{NarrowSample, WeightSample};

    fn state_with_data() -> ReplayState {
        let mut run = RunState {
            label: "attack.structure".to_string(),
            ..RunState::default()
        };
        run.boundaries.push((0, 100, "raw"));
        run.boundaries.push((1, 400, "fresh_region"));
        run.last_cycle = 500;
        run.chained.insert(1, 4);
        run.chained.insert(2, 2);
        run.narrowing.push(NarrowSample {
            seq: 5,
            layer: 1,
            remaining: 3,
            eta_branches: 90,
            root_pct_bp: 2500,
        });
        run.narrowing.push(NarrowSample {
            seq: 6,
            layer: 1,
            remaining: 1,
            eta_branches: 30,
            root_pct_bp: 7500,
        });
        let mut weights_run = RunState {
            label: "attack.weights".to_string(),
            ..RunState::default()
        };
        weights_run.weights.push(WeightSample {
            queries: 10,
            channel: 0,
            row: 0,
            col: 0,
        });
        weights_run.weights.push(WeightSample {
            queries: 25,
            channel: 0,
            row: 0,
            col: 1,
        });
        ReplayState {
            runs: vec![run, weights_run],
            events: 9,
            unknown_events: 0,
        }
    }

    #[test]
    fn timeline_is_deterministic_and_contains_all_charts() {
        let s = state_with_data();
        let a = render_timeline_svg(&s);
        let b = render_timeline_svg(&s);
        assert_eq!(a, b);
        assert!(a.contains("layer boundaries over trace cycles"));
        assert!(a.contains("distinct surviving candidates"));
        assert!(a.contains("enumeration progress"));
        assert!(a.contains("oracle queries per recovered weight (total 25)"));
        assert!(a.contains("b0@100"));
        assert!(a.starts_with("<svg"));
        assert!(a.ends_with("</svg>\n"));
    }

    #[test]
    fn empty_state_renders_a_valid_header_only_svg() {
        let s = ReplayState::new();
        let svg = render_timeline_svg(&s);
        assert!(svg.contains("0 events, 0 runs"));
        assert!(!svg.contains("polyline"));
    }
}
