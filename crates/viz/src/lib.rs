//! `cnnre-viz`: consumer-side rendering of the live attack-telemetry
//! stream (`cnnre_obs::stream`).
//!
//! The library half is pure and deterministic — it folds a sequence of
//! [`AttackEvent`]s into a [`replay::ReplayState`] and renders:
//!
//! * the recovered network graph as DOT ([`dot::render_dot`]) and SVG
//!   ([`dot::render_graph_svg`]), growing as `GraphConv`/`GraphFc` events
//!   confirm layers;
//! * an attack-progress timeline ([`timeline::render_timeline_svg`]):
//!   surviving candidates per layer, top-level enumeration progress, and
//!   oracle query consumption, over the stream's cycle/query domain.
//!
//! Everything is integer arithmetic over the wire-format values, so the
//! same `.evt` file always renders byte-identical output (the golden
//! replay test pins this). The binary (`src/main.rs`) adds the I/O shell:
//! `--replay <file>` and `--listen <addr>`.

pub mod dot;
pub mod replay;
pub mod timeline;

pub use replay::{GraphLayer, ReplayState, RunState};
