//! Folding an event stream into renderable state.

use cnnre_obs::stream::{AttackEvent, EventPayload};
use std::collections::BTreeMap;

/// One confirmed layer of the recovered network graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphLayer {
    /// A CONV layer (with optional fused pooling).
    Conv {
        /// Compute-layer index.
        layer: u64,
        /// Input feature-map width.
        w_ifm: u64,
        /// Input depth.
        d_ifm: u64,
        /// Output feature-map width.
        w_ofm: u64,
        /// Output depth (filter count).
        d_ofm: u64,
        /// Filter size.
        f_conv: u64,
        /// Stride.
        s_conv: u64,
        /// Padding.
        p_conv: u64,
        /// Fused pooling `(f, s, p)`, when present.
        pool: Option<(u64, u64, u64)>,
    },
    /// A fully-connected layer.
    Fc {
        /// Compute-layer index.
        layer: u64,
        /// Input features.
        in_features: u64,
        /// Output features.
        out_features: u64,
    },
}

/// One classified trace segment, as observed on the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Classification label (`prologue`/`compute`/`merge`/`other`).
    pub kind: &'static str,
    /// Cycle stamp of the segment's first event.
    pub start_cycle: u64,
    /// Cycle stamp of the segment's last event.
    pub end_cycle: u64,
    /// Distinct IFM blocks read.
    pub ifm_blocks: u64,
    /// Distinct OFM blocks written.
    pub ofm_blocks: u64,
    /// Distinct weight blocks read.
    pub weight_blocks: u64,
}

/// One candidate-narrowing progress sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NarrowSample {
    /// Stream sequence number (the timeline's x axis for solver progress).
    pub seq: u64,
    /// Observed node the enumeration is rooted at.
    pub layer: u64,
    /// Top-level candidates not yet explored.
    pub remaining: u64,
    /// Estimated recursion branches left.
    pub eta_branches: u64,
    /// Progress in basis points (0..=10000).
    pub root_pct_bp: u64,
}

/// One recovered-weight progress sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightSample {
    /// Cumulative oracle queries when this weight finished.
    pub queries: u64,
    /// Input channel.
    pub channel: u64,
    /// Filter row.
    pub row: u64,
    /// Filter column.
    pub col: u64,
}

/// Everything observed during one pipeline run (between `RunStarted`
/// markers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunState {
    /// The run's phase label.
    pub label: String,
    /// Classified segments by index.
    pub segments: BTreeMap<u64, SegmentInfo>,
    /// Layer boundaries as `(boundary index, cycle, signal label)`.
    pub boundaries: Vec<(u64, u64, &'static str)>,
    /// Candidate-narrowing samples in arrival order.
    pub narrowing: Vec<NarrowSample>,
    /// Distinct surviving candidates per observed node.
    pub chained: BTreeMap<u64, u64>,
    /// Recovered-weight samples in arrival order.
    pub weights: Vec<WeightSample>,
    /// Defense perturbations as `(kind, input events, output events)`.
    pub defenses: Vec<(String, u64, u64)>,
    /// Confirmed layers of the recovered structure, in arrival order.
    pub graph: Vec<GraphLayer>,
    /// Surviving structure count, once `RunFinished` arrives.
    pub structures: Option<u64>,
    /// Highest cycle stamp seen in this run.
    pub last_cycle: u64,
}

/// The accumulated state of a whole stream: one [`RunState`] per
/// `RunStarted` marker (plus an implicit unlabelled run for any events
/// that precede the first marker).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayState {
    /// Runs in stream order.
    pub runs: Vec<RunState>,
    /// Events consumed.
    pub events: u64,
    /// Frames with a tag this build does not know (forward compatibility).
    pub unknown_events: u64,
}

impl ReplayState {
    /// An empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a whole event sequence.
    #[must_use]
    pub fn from_events(events: &[AttackEvent]) -> Self {
        let mut s = Self::new();
        for ev in events {
            s.apply(ev);
        }
        s
    }

    fn current(&mut self) -> &mut RunState {
        if self.runs.is_empty() {
            self.runs.push(RunState::default());
        }
        let last = self.runs.len() - 1;
        &mut self.runs[last]
    }

    /// The last run carrying any recovered-graph events, if one exists.
    #[must_use]
    pub fn final_graph_run(&self) -> Option<&RunState> {
        self.runs.iter().rev().find(|r| !r.graph.is_empty())
    }

    /// Applies one event.
    pub fn apply(&mut self, ev: &AttackEvent) {
        self.events += 1;
        match &ev.payload {
            EventPayload::RunStarted { label } => {
                self.runs.push(RunState {
                    label: label.clone(),
                    ..RunState::default()
                });
            }
            EventPayload::SegmentClassified {
                index,
                kind,
                start_cycle,
                end_cycle,
                ifm_blocks,
                ofm_blocks,
                weight_blocks,
            } => {
                let info = SegmentInfo {
                    kind: kind.label(),
                    start_cycle: *start_cycle,
                    end_cycle: *end_cycle,
                    ifm_blocks: *ifm_blocks,
                    ofm_blocks: *ofm_blocks,
                    weight_blocks: *weight_blocks,
                };
                self.current().segments.insert(*index, info);
            }
            EventPayload::LayerBoundary { index, signal } => {
                let cycle = ev.cycle;
                let label = signal.label();
                let run = self.current();
                run.boundaries.push((*index, cycle, label));
            }
            EventPayload::CandidatesNarrowed {
                layer,
                remaining,
                eta_branches,
                root_pct_bp,
            } => {
                let sample = NarrowSample {
                    seq: ev.seq,
                    layer: *layer,
                    remaining: *remaining,
                    eta_branches: *eta_branches,
                    root_pct_bp: *root_pct_bp,
                };
                self.current().narrowing.push(sample);
            }
            EventPayload::LayerChained { layer, distinct } => {
                self.current().chained.insert(*layer, *distinct);
            }
            EventPayload::WeightRecovered {
                channel,
                row,
                col,
                queries,
            } => {
                let sample = WeightSample {
                    queries: *queries,
                    channel: *channel,
                    row: *row,
                    col: *col,
                };
                self.current().weights.push(sample);
            }
            EventPayload::DefenseObserved {
                kind,
                input_events,
                output_events,
            } => {
                let entry = (kind.clone(), *input_events, *output_events);
                self.current().defenses.push(entry);
            }
            EventPayload::GraphConv {
                layer,
                w_ifm,
                d_ifm,
                w_ofm,
                d_ofm,
                f_conv,
                s_conv,
                p_conv,
                pool,
            } => {
                let l = GraphLayer::Conv {
                    layer: *layer,
                    w_ifm: *w_ifm,
                    d_ifm: *d_ifm,
                    w_ofm: *w_ofm,
                    d_ofm: *d_ofm,
                    f_conv: *f_conv,
                    s_conv: *s_conv,
                    p_conv: *p_conv,
                    pool: *pool,
                };
                self.current().graph.push(l);
            }
            EventPayload::GraphFc {
                layer,
                in_features,
                out_features,
            } => {
                let l = GraphLayer::Fc {
                    layer: *layer,
                    in_features: *in_features,
                    out_features: *out_features,
                };
                self.current().graph.push(l);
            }
            EventPayload::RunFinished { structures } => {
                self.current().structures = Some(*structures);
            }
            EventPayload::Unknown { .. } => {
                self.unknown_events += 1;
            }
        }
        let cycle = ev.cycle;
        let run = self.current();
        run.last_cycle = run.last_cycle.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnnre_obs::stream::{BoundarySignal, SegmentKind};

    fn ev(seq: u64, cycle: u64, payload: EventPayload) -> AttackEvent {
        AttackEvent {
            seq,
            cycle,
            payload,
        }
    }

    #[test]
    fn events_fold_into_runs() {
        let events = vec![
            ev(
                0,
                0,
                EventPayload::RunStarted {
                    label: "accel.run_trace_only".to_string(),
                },
            ),
            ev(
                1,
                0,
                EventPayload::RunStarted {
                    label: "attack.structure".to_string(),
                },
            ),
            ev(
                2,
                120,
                EventPayload::LayerBoundary {
                    index: 0,
                    signal: BoundarySignal::Raw,
                },
            ),
            ev(
                3,
                900,
                EventPayload::SegmentClassified {
                    index: 0,
                    kind: SegmentKind::Prologue,
                    start_cycle: 0,
                    end_cycle: 100,
                    ifm_blocks: 0,
                    ofm_blocks: 64,
                    weight_blocks: 0,
                },
            ),
            ev(
                4,
                900,
                EventPayload::LayerChained {
                    layer: 1,
                    distinct: 3,
                },
            ),
            ev(
                5,
                900,
                EventPayload::GraphFc {
                    layer: 0,
                    in_features: 400,
                    out_features: 120,
                },
            ),
            ev(6, 900, EventPayload::RunFinished { structures: 16 }),
        ];
        let state = ReplayState::from_events(&events);
        assert_eq!(state.events, 7);
        assert_eq!(state.runs.len(), 2);
        let attack = &state.runs[1];
        assert_eq!(attack.label, "attack.structure");
        assert_eq!(attack.boundaries, vec![(0, 120, "raw")]);
        assert_eq!(attack.segments.len(), 1);
        assert_eq!(attack.chained.get(&1), Some(&3));
        assert_eq!(attack.graph.len(), 1);
        assert_eq!(attack.structures, Some(16));
        assert_eq!(attack.last_cycle, 900);
        assert_eq!(
            state.final_graph_run().map(|r| r.label.as_str()),
            Some("attack.structure")
        );
    }

    #[test]
    fn events_before_any_run_marker_land_in_an_implicit_run() {
        let events = vec![ev(0, 5, EventPayload::RunFinished { structures: 0 })];
        let state = ReplayState::from_events(&events);
        assert_eq!(state.runs.len(), 1);
        assert_eq!(state.runs[0].label, "");
        assert_eq!(state.runs[0].structures, Some(0));
    }

    #[test]
    fn unknown_events_are_counted_not_dropped() {
        let events = vec![ev(0, 1, EventPayload::Unknown { tag: 200 })];
        let state = ReplayState::from_events(&events);
        assert_eq!(state.events, 1);
        assert_eq!(state.unknown_events, 1);
    }
}
