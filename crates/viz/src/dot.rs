//! Deterministic DOT / SVG rendering of the recovered network graph.
//!
//! The recovered structure arrives as a linear sequence of confirmed
//! compute layers (`GraphConv` / `GraphFc` events, in execution order), so
//! the graph is an input node followed by a chain. Rendering is plain
//! string assembly over integers — no layout engine, no floats — so the
//! same event sequence always produces byte-identical output.

use crate::replay::GraphLayer;

fn layer_label(l: &GraphLayer) -> String {
    match l {
        GraphLayer::Conv {
            layer,
            w_ifm,
            d_ifm,
            w_ofm,
            d_ofm,
            f_conv,
            s_conv,
            p_conv,
            pool,
        } => {
            let pool_part = match pool {
                Some((f, s, p)) => format!("|pool f={f} s={s} p={p}"),
                None => String::new(),
            };
            format!(
                "{{conv {layer}|f={f_conv} s={s_conv} p={p_conv}|ifm {w_ifm}x{w_ifm}x{d_ifm}|\
                 ofm {w_ofm}x{w_ofm}x{d_ofm}{pool_part}}}"
            )
        }
        GraphLayer::Fc {
            layer,
            in_features,
            out_features,
        } => format!("{{fc {layer}|{in_features} -> {out_features}}}"),
    }
}

fn node_id(l: &GraphLayer) -> String {
    match l {
        GraphLayer::Conv { layer, .. } | GraphLayer::Fc { layer, .. } => format!("l{layer}"),
    }
}

/// Renders the confirmed layers as a Graphviz DOT digraph. An empty layer
/// list renders the input node alone (the "nothing recovered yet"
/// snapshot).
#[must_use]
pub fn render_dot(graph: &[GraphLayer]) -> String {
    let mut out = String::new();
    out.push_str("digraph recovered {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=record, fontname=\"monospace\"];\n");
    out.push_str("  input [label=\"input\", shape=ellipse];\n");
    for l in graph {
        out.push_str(&format!(
            "  {} [label=\"{}\"];\n",
            node_id(l),
            layer_label(l)
        ));
    }
    let mut prev = "input".to_string();
    for l in graph {
        let id = node_id(l);
        out.push_str(&format!("  {prev} -> {id};\n"));
        prev = id;
    }
    out.push_str("}\n");
    out
}

const BOX_W: u64 = 300;
const BOX_H: u64 = 64;
const GAP: u64 = 28;
const MARGIN: u64 = 20;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the confirmed layers as a vertical-chain SVG — the same
/// information as [`render_dot`] without requiring Graphviz to view it.
#[must_use]
pub fn render_graph_svg(graph: &[GraphLayer]) -> String {
    let n = graph.len() as u64;
    let width = BOX_W + 2 * MARGIN;
    let height = MARGIN * 2 + (n + 1) * BOX_H + n.max(1) * GAP + 8;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\" font-family=\"monospace\" font-size=\"12\">\n"
    ));
    // Input node.
    let cx = width / 2;
    out.push_str(&format!(
        "  <ellipse cx=\"{cx}\" cy=\"{}\" rx=\"60\" ry=\"20\" fill=\"#eef\" stroke=\"#336\"/>\n",
        MARGIN + 20
    ));
    out.push_str(&format!(
        "  <text x=\"{cx}\" y=\"{}\" text-anchor=\"middle\">input</text>\n",
        MARGIN + 24
    ));
    let mut prev_bottom = MARGIN + 40;
    for (i, l) in graph.iter().enumerate() {
        let top = MARGIN + BOX_H + GAP + i as u64 * (BOX_H + GAP);
        let x = MARGIN;
        // Edge from the previous node.
        out.push_str(&format!(
            "  <line x1=\"{cx}\" y1=\"{prev_bottom}\" x2=\"{cx}\" y2=\"{top}\" \
             stroke=\"#333\" marker-end=\"none\"/>\n"
        ));
        let (fill, title, detail) = match l {
            GraphLayer::Conv {
                layer,
                w_ofm,
                d_ofm,
                f_conv,
                s_conv,
                p_conv,
                pool,
                ..
            } => {
                let pool_part = match pool {
                    Some((f, s, _)) => format!(" pool {f}/{s}"),
                    None => String::new(),
                };
                (
                    "#efe",
                    format!("conv {layer}"),
                    format!(
                        "f={f_conv} s={s_conv} p={p_conv} ofm {w_ofm}x{w_ofm}x{d_ofm}{pool_part}"
                    ),
                )
            }
            GraphLayer::Fc {
                layer,
                in_features,
                out_features,
            } => (
                "#fee",
                format!("fc {layer}"),
                format!("{in_features} -> {out_features}"),
            ),
        };
        out.push_str(&format!(
            "  <rect x=\"{x}\" y=\"{top}\" width=\"{BOX_W}\" height=\"{BOX_H}\" rx=\"6\" \
             fill=\"{fill}\" stroke=\"#363\"/>\n"
        ));
        out.push_str(&format!(
            "  <text x=\"{cx}\" y=\"{}\" text-anchor=\"middle\" font-weight=\"bold\">{}</text>\n",
            top + 24,
            esc(&title)
        ));
        out.push_str(&format!(
            "  <text x=\"{cx}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            top + 46,
            esc(&detail)
        ));
        prev_bottom = top + BOX_H;
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<GraphLayer> {
        vec![
            GraphLayer::Conv {
                layer: 0,
                w_ifm: 32,
                d_ifm: 1,
                w_ofm: 14,
                d_ofm: 6,
                f_conv: 5,
                s_conv: 1,
                p_conv: 0,
                pool: Some((2, 2, 0)),
            },
            GraphLayer::Fc {
                layer: 1,
                in_features: 400,
                out_features: 120,
            },
        ]
    }

    #[test]
    fn dot_is_deterministic_and_chains_nodes() {
        let a = render_dot(&sample());
        let b = render_dot(&sample());
        assert_eq!(a, b);
        assert!(a.contains("input -> l0;"));
        assert!(a.contains("l0 -> l1;"));
        assert!(a.contains("conv 0"));
        assert!(a.contains("pool f=2 s=2"));
        assert!(a.contains("400 -> 120"));
    }

    #[test]
    fn empty_graph_renders_input_only() {
        let d = render_dot(&[]);
        assert!(d.contains("input"));
        assert!(!d.contains("->"));
        let svg = render_graph_svg(&[]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn svg_escapes_and_is_deterministic() {
        let a = render_graph_svg(&sample());
        let b = render_graph_svg(&sample());
        assert_eq!(a, b);
        assert!(a.contains("400 -&gt; 120"));
        assert!(a.contains("conv 0"));
    }
}
