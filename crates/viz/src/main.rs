//! `cnnre-viz` — render the live attack-telemetry stream.
//!
//! ```text
//! cnnre-viz --replay <file.evt>  [--out-dir DIR] [--snapshots] [--metrics FILE]
//! cnnre-viz --listen <addr>      [--out-dir DIR] [--snapshots] [--metrics FILE]
//! ```
//!
//! `--replay` decodes a recorded event file; `--listen` binds a TCP
//! listener, accepts one producer connection (`cnnre … --events-tcp`), and
//! consumes events until the producer disconnects. Either way the final
//! state is rendered into `<out-dir>/graph.dot`, `graph.svg`, and
//! `timeline.svg`; with `--snapshots`, an incremental `graph_NNN.dot` is
//! written every time a recovered-graph event confirms a new layer, so the
//! directory shows the network growing as the attack converges.
//!
//! Exit codes: 0 success, 1 stream/render failure, 2 usage error.

use cnnre_obs::stream::{EventPayload, EventReader};
use cnnre_viz::{dot, replay::ReplayState, timeline};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    replay: Option<PathBuf>,
    listen: Option<String>,
    out_dir: PathBuf,
    snapshots: bool,
    metrics: Option<PathBuf>,
}

const USAGE: &str = "usage:\n  \
    cnnre-viz --replay <file.evt> [--out-dir DIR] [--snapshots] [--metrics FILE]\n  \
    cnnre-viz --listen <addr>     [--out-dir DIR] [--snapshots] [--metrics FILE]\n\n\
    --replay <file>   render a recorded event stream\n  \
    --listen <addr>   accept one live producer (cnnre ... --events-tcp <addr>)\n  \
    --out-dir <dir>   output directory (default: viz_out)\n  \
    --snapshots       write incremental graph_NNN.dot per confirmed layer\n  \
    --metrics <file>  write a viz.* metrics snapshot (JSON)";

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        replay: None,
        listen: None,
        out_dir: PathBuf::from("viz_out"),
        snapshots: false,
        metrics: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--replay" => {
                let v = it.next().ok_or("--replay needs a file argument")?;
                opts.replay = Some(PathBuf::from(v));
            }
            "--listen" => {
                let v = it.next().ok_or("--listen needs an address argument")?;
                opts.listen = Some(v.clone());
            }
            "--out-dir" => {
                let v = it.next().ok_or("--out-dir needs a directory argument")?;
                opts.out_dir = PathBuf::from(v);
            }
            "--snapshots" => opts.snapshots = true,
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a file argument")?;
                opts.metrics = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    match (&opts.replay, &opts.listen) {
        (Some(_), Some(_)) => Err("--replay and --listen are mutually exclusive".to_string()),
        (None, None) => Err("one of --replay or --listen is required".to_string()),
        _ => Ok(opts),
    }
}

/// Streams events from `source` into a replay state, writing incremental
/// graph snapshots when requested.
fn consume<R: Read>(
    source: R,
    opts: &Opts,
    consumed: &cnnre_obs::Counter,
    snapshots_written: &cnnre_obs::Counter,
) -> Result<ReplayState, String> {
    let mut reader = EventReader::new(source);
    let mut state = ReplayState::new();
    let mut snapshot_idx: u64 = 0;
    loop {
        let ev = match reader.next_event() {
            Ok(Some(ev)) => ev,
            Ok(None) => break,
            Err(e) => return Err(format!("event stream: {e}")),
        };
        let is_graph_event = matches!(
            ev.payload,
            EventPayload::GraphConv { .. } | EventPayload::GraphFc { .. }
        );
        state.apply(&ev);
        consumed.inc();
        if opts.snapshots && is_graph_event {
            let graph = state
                .final_graph_run()
                .map(|r| r.graph.as_slice())
                .unwrap_or(&[]);
            let path = opts.out_dir.join(format!("graph_{snapshot_idx:03}.dot"));
            write_file(&path, &dot::render_dot(graph))?;
            snapshots_written.inc();
            snapshot_idx += 1;
        }
    }
    Ok(state)
}

fn write_file(path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("write {}: {e}", path.display()))
}

fn run(opts: &Opts) -> Result<(), String> {
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("create {}: {e}", opts.out_dir.display()))?;
    let consumed = cnnre_obs::counter("viz.events.consumed");
    let snapshots_written = cnnre_obs::counter("viz.snapshots.written");
    let state = if let Some(file) = &opts.replay {
        let f = std::fs::File::open(file).map_err(|e| format!("open {}: {e}", file.display()))?;
        consume(
            std::io::BufReader::new(f),
            opts,
            &consumed,
            &snapshots_written,
        )?
    } else if let Some(addr) = &opts.listen {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!("cnnre-viz: listening on {addr}, waiting for a producer…");
        let (sock, peer) = listener
            .accept()
            .map_err(|e| format!("accept on {addr}: {e}"))?;
        eprintln!("cnnre-viz: producer connected from {peer}");
        consume(
            std::io::BufReader::new(sock),
            opts,
            &consumed,
            &snapshots_written,
        )?
    } else {
        unreachable!("parse_args guarantees a mode")
    };
    let graph = state
        .final_graph_run()
        .map(|r| r.graph.as_slice())
        .unwrap_or(&[]);
    write_file(&opts.out_dir.join("graph.dot"), &dot::render_dot(graph))?;
    write_file(
        &opts.out_dir.join("graph.svg"),
        &dot::render_graph_svg(graph),
    )?;
    write_file(
        &opts.out_dir.join("timeline.svg"),
        &timeline::render_timeline_svg(&state),
    )?;
    eprintln!(
        "cnnre-viz: {} events ({} unknown), {} runs, {} confirmed layers -> {}",
        state.events,
        state.unknown_events,
        state.runs.len(),
        graph.len(),
        opts.out_dir.display()
    );
    if let Some(path) = &opts.metrics {
        cnnre_obs::global()
            .snapshot()
            .write_json(path, false)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("cnnre-viz: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.metrics.is_some() {
        cnnre_obs::set_enabled(true);
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cnnre-viz: {msg}");
            ExitCode::from(1)
        }
    }
}
