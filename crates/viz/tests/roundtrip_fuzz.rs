//! Protocol round-trip fuzz, driven by the in-tree SplitMix64 generator:
//!
//! * any randomly generated event sequence must encode → decode to the
//!   same events (lossless framing);
//! * any random byte buffer fed to the reader must decode or error — the
//!   decoder never panics and never loops;
//! * random truncations of a valid stream must keep every frame before
//!   the cut intact.

use cnnre_obs::stream::{
    encode_frame, header, read_stream, AttackEvent, BoundarySignal, EventPayload, EventReader,
    SegmentKind,
};
use cnnre_tensor::rng::{Rng, SeedableRng, SmallRng};

fn random_payload(rng: &mut SmallRng) -> EventPayload {
    match rng.gen_range(0..10u32) {
        0 => EventPayload::RunStarted {
            label: format!("run_{}", rng.gen_range(0..1000u32)),
        },
        1 => EventPayload::SegmentClassified {
            index: rng.gen_range(0..64u64),
            kind: SegmentKind::from_code(rng.gen_range(0..4u64) as u8),
            start_cycle: rng.gen_range(0..1_000_000u64),
            end_cycle: rng.gen_range(0..1_000_000u64),
            ifm_blocks: rng.gen_range(0..10_000u64),
            ofm_blocks: rng.gen_range(0..10_000u64),
            weight_blocks: rng.gen_range(0..10_000u64),
        },
        2 => EventPayload::LayerBoundary {
            index: rng.gen_range(0..64u64),
            signal: BoundarySignal::from_code(rng.gen_range(0..2u64) as u8),
        },
        3 => EventPayload::CandidatesNarrowed {
            layer: rng.gen_range(0..16u64),
            remaining: rng.gen_range(0..u64::MAX),
            eta_branches: rng.gen_range(0..u64::MAX),
            root_pct_bp: rng.gen_range(0..=10_000u64),
        },
        4 => EventPayload::LayerChained {
            layer: rng.gen_range(0..16u64),
            distinct: rng.gen_range(0..100_000u64),
        },
        5 => EventPayload::WeightRecovered {
            channel: rng.gen_range(0..512u64),
            row: rng.gen_range(0..16u64),
            col: rng.gen_range(0..16u64),
            queries: rng.gen_range(0..u64::MAX),
        },
        6 => EventPayload::DefenseObserved {
            kind: "path_oram".to_string(),
            input_events: rng.gen_range(0..u64::MAX),
            output_events: rng.gen_range(0..u64::MAX),
        },
        7 => EventPayload::GraphConv {
            layer: rng.gen_range(0..16u64),
            w_ifm: rng.gen_range(1..512u64),
            d_ifm: rng.gen_range(1..512u64),
            w_ofm: rng.gen_range(1..512u64),
            d_ofm: rng.gen_range(1..512u64),
            f_conv: rng.gen_range(1..12u64),
            s_conv: rng.gen_range(1..4u64),
            p_conv: rng.gen_range(0..4u64),
            pool: if rng.gen_bool(0.5) {
                Some((
                    rng.gen_range(1..4u64),
                    rng.gen_range(1..4u64),
                    rng.gen_range(0..2u64),
                ))
            } else {
                None
            },
        },
        8 => EventPayload::GraphFc {
            layer: rng.gen_range(0..16u64),
            in_features: rng.gen_range(1..100_000u64),
            out_features: rng.gen_range(1..100_000u64),
        },
        _ => EventPayload::RunFinished {
            structures: rng.gen_range(0..100_000u64),
        },
    }
}

fn random_stream(rng: &mut SmallRng, max_events: usize) -> (Vec<AttackEvent>, Vec<u8>) {
    let n = rng.gen_range(0..=max_events);
    let mut cycle = 0u64;
    let events: Vec<AttackEvent> = (0..n)
        .map(|seq| {
            cycle += rng.gen_range(0..1000u64);
            AttackEvent {
                seq: seq as u64,
                cycle,
                payload: random_payload(rng),
            }
        })
        .collect();
    let mut bytes = header();
    for ev in &events {
        bytes.extend_from_slice(&encode_frame(ev));
    }
    (events, bytes)
}

#[test]
fn random_event_sequences_round_trip_losslessly() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _ in 0..200 {
        let (events, bytes) = random_stream(&mut rng, 40);
        let decoded = read_stream(bytes.as_slice()).expect("own encoding decodes");
        assert_eq!(decoded, events);
    }
}

#[test]
fn random_garbage_never_panics_the_reader() {
    let mut rng = SmallRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..500 {
        let len = rng.gen_range(0..512usize);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect();
        // Any outcome but a panic/hang is acceptable.
        let _ = read_stream(garbage.as_slice());
        // Same bytes behind a valid header: frames are length-prefixed, so
        // the reader must still terminate (decode, error, or clean EOF).
        let mut with_header = header();
        with_header.extend_from_slice(&garbage);
        let mut reader = EventReader::new(with_header.as_slice());
        for _ in 0..(len + 2) {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
}

#[test]
fn truncations_preserve_every_complete_frame() {
    let mut rng = SmallRng::seed_from_u64(42);
    let (events, bytes) = random_stream(&mut rng, 20);
    for cut in header().len()..bytes.len() {
        match read_stream(&bytes[..cut]) {
            Ok(decoded) => assert!(decoded.len() <= events.len()),
            Err(_) => {
                // A mid-frame cut errors; everything before it must still
                // decode through the incremental reader.
                let mut reader = EventReader::new(&bytes[..cut]);
                let mut ok = 0usize;
                while let Ok(Some(ev)) = reader.next_event() {
                    assert_eq!(ev, events[ok]);
                    ok += 1;
                }
                assert!(ok <= events.len());
            }
        }
    }
}

#[test]
fn corrupted_streams_decode_or_error_but_always_terminate() {
    // Flipping a byte may corrupt a length prefix and re-align the rest of
    // the stream arbitrarily; the only guarantees are termination and no
    // panic, with every decoded frame having consumed at least one byte.
    let mut rng = SmallRng::seed_from_u64(7);
    let (_, bytes) = random_stream(&mut rng, 10);
    for _ in 0..300 {
        let mut corrupted = bytes.clone();
        if corrupted.len() <= header().len() {
            break;
        }
        let pos = rng.gen_range(header().len()..corrupted.len());
        corrupted[pos] ^= rng.gen_range(1..256u64) as u8;
        if let Ok(decoded) = read_stream(corrupted.as_slice()) {
            assert!(decoded.len() <= corrupted.len());
        }
    }
}
