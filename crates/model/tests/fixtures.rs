//! Seeded-defect fixtures: one per defect class, each caught with exactly
//! its code, with the failing schedule pinned byte-for-byte and replayed.
//!
//! These are the checker's own regression suite: if exploration order,
//! the scheduling policy, or the happens-before engine changes, the
//! golden schedule strings move and these tests say so.

#![cfg(feature = "model-check")]

use cnnre_model::cell::RaceCell;
use cnnre_model::sync::atomic::{AtomicUsize, Ordering};
use cnnre_model::sync::{Arc, Mutex};
use cnnre_model::{explore, replay, thread, FailureKind};

fn lock<T>(m: &Mutex<T>) -> cnnre_model::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Defect class 1 — data race: two threads write a [`RaceCell`] with no
/// ordering between them.
fn seeded_data_race() {
    let cell = Arc::new(RaceCell::new(0u32));
    let c = Arc::clone(&cell);
    let t = thread::spawn(move || c.set(1));
    cell.set(2);
    t.join().expect("joined");
}

/// Defect class 2 — AB-BA deadlock: two threads take two locks in
/// opposite orders.
fn seeded_abba_deadlock() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let ga = lock(&a2);
        let gb = lock(&b2);
        drop((ga, gb));
    });
    let gb = lock(&b);
    let ga = lock(&a);
    drop((gb, ga));
    t.join().expect("joined");
}

/// Defect class 3 — lost update: a non-atomic read-modify-write on an
/// atomic counter; under an unlucky interleaving one increment vanishes
/// and the final assertion panics.
fn seeded_lost_update() {
    let n = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker joined");
    }
    assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
}

/// Exploration must find exactly `kind`, on exactly the golden schedule,
/// and replaying that schedule must reproduce it.
fn assert_seeded(f: impl Fn() + Send + Sync + Copy + 'static, kind: FailureKind, golden: &str) {
    let failure = explore(f).expect_err("the seeded defect must be found");
    assert_eq!(failure.kind, kind, "wrong defect class: {failure}");
    assert_eq!(
        failure.schedule, golden,
        "failing schedule moved (exploration order changed): {failure}"
    );
    let replayed = replay(golden, f).expect_err("the golden schedule must reproduce the defect");
    assert_eq!(
        replayed.kind, kind,
        "replay found a different defect: {replayed}"
    );
    assert_eq!(replayed.schedule, golden, "replay diverged: {replayed}");
}

#[test]
fn data_race_is_mc001_with_golden_schedule() {
    assert_eq!(FailureKind::DataRace.code(), "MC001");
    assert_seeded(seeded_data_race, FailureKind::DataRace, "0.0.0.1.1");
}

#[test]
fn abba_deadlock_is_mc002_with_golden_schedule() {
    assert_eq!(FailureKind::Deadlock.code(), "MC002");
    assert_seeded(seeded_abba_deadlock, FailureKind::Deadlock, "0.0.0.1.1");
}

#[test]
fn lost_update_is_mc003_with_golden_schedule() {
    assert_eq!(FailureKind::Panic.code(), "MC003");
    assert_seeded(
        seeded_lost_update,
        FailureKind::Panic,
        "0.0.0.1.1.2.2.2.1.0.0.0",
    );
}
