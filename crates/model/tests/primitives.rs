//! Engine validation: the shims explore real interleavings, honor
//! happens-before edges (no false positives), and catch unordered
//! accesses (no false negatives).

#![cfg(feature = "model-check")]

use cnnre_model::cell::RaceCell;
use cnnre_model::sync::atomic::{AtomicBool, Ordering};
use cnnre_model::sync::{mpsc, Arc, Condvar, Mutex};
use cnnre_model::{explore, replay, thread, FailureKind};

#[test]
fn explores_multiple_interleavings() {
    let stats = explore(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker joined");
        }
        let v = *n.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(v, 2);
    })
    .expect("mutex counter is correct under every schedule");
    assert!(
        stats.executions > 1,
        "two contending threads must yield several interleavings, got {}",
        stats.executions
    );
}

#[test]
fn mutex_orders_cell_accesses() {
    explore(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let lock = Arc::new(Mutex::new(()));
        let (c, l) = (Arc::clone(&cell), Arc::clone(&lock));
        let t = thread::spawn(move || {
            let _g = l.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            c.set(1);
        });
        {
            let _g = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cell.set(2);
        }
        t.join().expect("joined");
    })
    .expect("lock-protected writes are ordered");
}

#[test]
fn release_acquire_flag_orders_the_payload() {
    explore(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            c.set(7);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(cell.get(), 7);
        }
        t.join().expect("joined");
    })
    .expect("release/acquire publication is race-free");
}

#[test]
fn relaxed_flag_publication_is_a_race() {
    let failure = explore(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            c.set(7);
            f.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            let _ = cell.get();
        }
        t.join().expect("joined");
    })
    .expect_err("relaxed publication leaves the payload unordered");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert_eq!(failure.kind.code(), "MC001");
}

#[test]
fn join_orders_the_child_writes() {
    explore(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let c = Arc::clone(&cell);
        let t = thread::spawn(move || c.set(3));
        t.join().expect("joined");
        assert_eq!(cell.get(), 3);
    })
    .expect("join is an acquire of the child's history");
}

#[test]
fn channel_transfers_values_and_ordering() {
    explore(|| {
        let cell = Arc::new(RaceCell::new(0u32));
        let (tx, rx) = mpsc::channel();
        let c = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c.set(11);
            tx.send(1u32).expect("receiver alive");
            tx.send(2u32).expect("receiver alive");
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            assert_eq!(cell.get(), 11, "send is a release, recv an acquire");
        }
        assert_eq!(got, vec![1, 2]);
        t.join().expect("joined");
    })
    .expect("channel handoff is ordered and lossless");
}

#[test]
fn condvar_handoff_completes_under_every_schedule() {
    explore(|| {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let s = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let (m, cv) = (&s.0, &s.1);
            let mut g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *g = Some(9);
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = (&slot.0, &slot.1);
        let mut g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while g.is_none() {
            g = cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        assert_eq!(*g, Some(9));
        drop(g);
        t.join().expect("joined");
    })
    .expect("guarded condvar wait never loses the wakeup");
}

#[test]
fn replay_reproduces_the_found_failure() {
    let racy = || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c = Arc::clone(&cell);
        let t = thread::spawn(move || c.set(1));
        cell.set(2);
        t.join().expect("joined");
    };
    let failure = explore(racy).expect_err("unordered writes race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    let replayed = replay(&failure.schedule, racy).expect_err("replay hits the same defect");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.schedule, failure.schedule);
}

#[test]
fn shims_fall_back_to_std_outside_executions() {
    // This test itself is NOT inside check()/explore(): the shims must
    // behave exactly like std.
    let n = Arc::new(Mutex::new(0u32));
    let flag = Arc::new(AtomicBool::new(false));
    let (n2, f2) = (Arc::clone(&n), Arc::clone(&flag));
    let t = thread::spawn(move || {
        *n2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = 5;
        f2.store(true, Ordering::Release);
    });
    t.join().expect("joined");
    assert!(flag.load(Ordering::Acquire));
    assert_eq!(
        *n.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        5
    );
    let (tx, rx) = mpsc::channel();
    tx.send(42u8).expect("receiver alive");
    drop(tx);
    assert_eq!(rx.recv(), Ok(42));
    assert!(rx.recv().is_err());
}
