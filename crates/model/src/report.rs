//! Exploration configuration, failure reports, and the printable schedule
//! string every failure replays from.

use std::fmt;

/// Exploration limits and the preemption bound.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// execution. Switches at blocking points are free; `None` removes the
    /// bound entirely. Two preemptions reach every known two-thread bug
    /// class (Musuvathi & Qadeer's small-bound hypothesis), and every
    /// in-tree model test explores at bound ≥ 2.
    pub preemption_bound: Option<usize>,
    /// Visible-operation cap per execution; exceeding it reports a budget
    /// failure (likely livelock) instead of hanging — the model crate may
    /// not read the wall clock.
    pub max_ops: usize,
    /// Total executions cap across the exploration.
    pub max_executions: usize,
    /// Maximum live model threads per execution.
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_ops: 20_000,
            max_executions: 200_000,
            max_threads: 8,
        }
    }
}

/// What kind of defect an exploration found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// MC001 — two unsynchronized accesses to a [`crate::cell::RaceCell`],
    /// at least one a write, unordered by happens-before.
    DataRace,
    /// MC002 — every unfinished thread blocked (AB-BA lock cycle, lost
    /// wakeup, recv with no live sender already drained, …).
    Deadlock,
    /// MC003 — a model thread panicked (failed assertion, explicit panic).
    Panic,
    /// MC004 — a replayed schedule diverged from the program (named a
    /// thread that does not exist or whose next operation is blocked).
    Diverged,
    /// MC005 — an exploration budget (`max_ops` / `max_executions` /
    /// `max_threads`) was exceeded.
    Budget,
}

impl FailureKind {
    /// The stable `MCnnn` code, mirroring the lint/audit code families.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            FailureKind::DataRace => "MC001",
            FailureKind::Deadlock => "MC002",
            FailureKind::Panic => "MC003",
            FailureKind::Diverged => "MC004",
            FailureKind::Budget => "MC005",
        }
    }
}

/// One defect found by exploration, with the schedule that
/// deterministically reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Defect class.
    pub kind: FailureKind,
    /// Human description (which objects/threads, what collided).
    pub message: String,
    /// The failing schedule: chosen thread ids joined with `.`, one per
    /// scheduling decision. Feed it back through
    /// `CNNRE_MODEL_SCHEDULE=<schedule>` or [`crate::replay`].
    pub schedule: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cnnre-model {}: {}", self.kind.code(), self.message)?;
        writeln!(f, "  schedule: {}", self.schedule)?;
        write!(
            f,
            "  replay with: CNNRE_MODEL_SCHEDULE={} <same test>",
            self.schedule
        )
    }
}

/// Exploration summary returned on success.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Executions (complete interleavings) run, including pruned ones.
    pub executions: usize,
    /// Visible operations executed across all executions.
    pub ops: usize,
    /// Deepest scheduling-decision count in any execution.
    pub max_depth: usize,
    /// Executions cut short because every enabled thread was in the sleep
    /// set (a dependence-equivalent interleaving was already explored).
    pub sleep_prunes: usize,
    /// Branches skipped because taking them would exceed the preemption
    /// bound.
    pub bound_prunes: usize,
}

/// Renders a choice sequence as the printable schedule string.
#[must_use]
pub fn encode_schedule(choices: &[usize]) -> String {
    let mut out = String::new();
    for (i, c) in choices.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        out.push_str(&c.to_string());
    }
    out
}

/// Parses a schedule string back into choices. Empty strings parse to an
/// empty schedule; anything non-numeric is an error naming the bad piece.
pub fn decode_schedule(s: &str) -> Result<Vec<usize>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|piece| {
            piece
                .parse::<usize>()
                .map_err(|_| format!("bad schedule component {piece:?} in {s:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips() {
        let choices = vec![0, 0, 1, 0, 2, 1];
        let s = encode_schedule(&choices);
        assert_eq!(s, "0.0.1.0.2.1");
        assert_eq!(decode_schedule(&s), Ok(choices));
        assert_eq!(decode_schedule(""), Ok(vec![]));
        assert!(decode_schedule("0.x.1").is_err());
    }

    #[test]
    fn failure_display_names_code_and_schedule() {
        let f = Failure {
            kind: FailureKind::DataRace,
            message: "write/write on cell #3".into(),
            schedule: "0.1.0".into(),
        };
        let s = f.to_string();
        assert!(s.contains("MC001"));
        assert!(s.contains("CNNRE_MODEL_SCHEDULE=0.1.0"));
    }
}
