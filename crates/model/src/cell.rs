//! [`RaceCell`]: shared data under the eye of the race detector.
//!
//! The model's happens-before engine only reports races on data it can
//! see. `RaceCell<T>` is that data: every access is checked against the
//! FastTrack-style epochs of prior accesses, and two accesses unordered
//! by happens-before (at least one a write) fail the exploration with
//! MC001. In normal builds it degrades to a plain reader–writer lock —
//! safe, modestly priced, and semantically identical.
//!
//! Use it for the payload slots of lock-free structures (e.g. the
//! work-stealing deque's buffer) where the *protocol*, not a lock, is
//! supposed to order access.

#[cfg(not(feature = "model-check"))]
mod imp {
    use std::sync::{Mutex, PoisonError};

    /// Shared storage whose cross-thread ordering the model checker
    /// verifies. See the module docs.
    #[derive(Debug, Default)]
    pub struct RaceCell<T> {
        inner: Mutex<T>,
    }

    impl<T> RaceCell<T> {
        /// Creates a cell (usable in statics).
        pub const fn new(value: T) -> Self {
            RaceCell {
                inner: Mutex::new(value),
            }
        }

        /// Reads through a closure.
        pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
            f(&self.inner.lock().unwrap_or_else(PoisonError::into_inner))
        }

        /// Writes through a closure.
        pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
        }

        /// Copies the value out.
        pub fn get(&self) -> T
        where
            T: Copy,
        {
            self.with(|v| *v)
        }

        /// Overwrites the value.
        pub fn set(&self, value: T) {
            self.with_mut(|v| *v = value);
        }

        /// Swaps in a new value, returning the old one.
        pub fn replace(&self, value: T) -> T {
            self.with_mut(|v| std::mem::replace(v, value))
        }
    }
}

#[cfg(feature = "model-check")]
mod imp {
    use std::sync::{Mutex, PoisonError};

    use crate::runtime::{visible, ObjId, Op};

    /// Shared storage whose cross-thread ordering the model checker
    /// verifies. See the module docs.
    #[derive(Debug, Default)]
    pub struct RaceCell<T> {
        id: ObjId,
        inner: Mutex<T>,
    }

    impl<T> RaceCell<T> {
        /// Creates a cell (usable in statics).
        pub const fn new(value: T) -> Self {
            RaceCell {
                id: ObjId::new(),
                inner: Mutex::new(value),
            }
        }

        /// Reads through a closure; checked against unordered writes.
        pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
            let _ = visible(Op::CellRead(self.id.get()));
            f(&self.inner.lock().unwrap_or_else(PoisonError::into_inner))
        }

        /// Writes through a closure; checked against unordered accesses.
        pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            let _ = visible(Op::CellWrite(self.id.get()));
            f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
        }

        /// Copies the value out.
        pub fn get(&self) -> T
        where
            T: Copy,
        {
            self.with(|v| *v)
        }

        /// Overwrites the value.
        pub fn set(&self, value: T) {
            self.with_mut(|v| *v = value);
        }

        /// Swaps in a new value, returning the old one.
        pub fn replace(&self, value: T) -> T {
            self.with_mut(|v| std::mem::replace(v, value))
        }
    }
}

pub use imp::*;
