//! Drop-in `std::thread` surface for spawning, joining, and yielding.
//!
//! Normal builds re-export `std::thread`. Under `model-check`, spawns
//! inside a model execution become model threads the scheduler controls;
//! `sleep` becomes a pure scheduling point (the model has no clock), and
//! spawns outside an execution fall back to real OS threads.

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}

#[cfg(feature = "model-check")]
mod imp {
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};
    use std::time::Duration;

    use crate::runtime::{self, visible, Op, OpOutcome};

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            result: Arc<StdMutex<Option<T>>>,
        },
    }

    /// Handle to a spawned thread; joining a model thread blocks the
    /// model, not the OS.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its value. For a
        /// model thread whose execution was aborted (or that panicked —
        /// which the checker reports as MC003), the error payload is a
        /// placeholder string.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { tid, result } => {
                    let _ = visible(Op::Join(tid));
                    match result.lock().unwrap_or_else(PoisonError::into_inner).take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new(
                            "cnnre-model: joined thread produced no value (panicked or aborted)",
                        )),
                    }
                }
            }
        }
    }

    /// Spawns a thread: a scheduler-controlled model thread inside an
    /// execution, a real OS thread otherwise.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if runtime::in_model() {
            let result = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            match runtime::spawn_thread(move || {
                let v = f();
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            }) {
                Some(tid) => JoinHandle(Inner::Model { tid, result }),
                None => panic!("cnnre-model: could not spawn model thread"),
            }
        } else {
            JoinHandle(Inner::Std(std::thread::spawn(f)))
        }
    }

    /// Thread factory mirroring `std::thread::Builder` (the name is
    /// ignored under the model — model threads are named by tid).
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with no name set.
        #[must_use]
        pub fn new() -> Builder {
            Builder { name: None }
        }

        /// Names the thread (fallback spawns only).
        #[must_use]
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawns the thread; see [`spawn`].
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if runtime::in_model() {
                Ok(spawn(f))
            } else {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }

    /// A scheduling point: lets the controller run another thread.
    pub fn yield_now() {
        if matches!(visible(Op::Yield), OpOutcome::Fallback) {
            std::thread::yield_now();
        }
    }

    /// Under the model, sleeping is just yielding — there is no clock, so
    /// `sleep`-based polling loops show up as MC005 op-budget failures
    /// rather than passing by luck of timing.
    pub fn sleep(dur: Duration) {
        if matches!(visible(Op::Yield), OpOutcome::Fallback) {
            std::thread::sleep(dur);
        }
    }
}

pub use imp::*;
