//! The model-check runtime: one engine per execution, real OS threads
//! cooperating so exactly one runs at a time.
//!
//! Every shim operation calls [`visible`] before touching data: the thread
//! publishes the operation it wants to perform, wakes the controller, and
//! blocks until granted. The controller (in [`crate::explore`]) picks one
//! enabled thread per decision; the granted thread then *applies* the
//! operation's synchronization effects (vector-clock joins, lock
//! ownership, channel lengths, race checks) under the engine lock and
//! returns to user code until its next visible operation.
//!
//! Threads outside a model execution (no thread-local [`Ctx`]) get
//! [`OpOutcome::Fallback`]: the shims behave exactly like `std`. This is
//! what makes the `model-check` feature safe to unify into every test
//! build — only code inside `check`/`explore` closures is scheduled.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, OnceLock, PoisonError};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VClock;
use crate::report::{encode_schedule, Failure, FailureKind};

/// Process-global object-id source. Ids are assigned lazily on an
/// object's first visible use and stay stable for its lifetime, across
/// executions (statics keep their id; per-execution objects get fresh
/// ones, and each execution starts from a fresh object table).
static NEXT_OBJ: StdAtomicUsize = StdAtomicUsize::new(1);

/// A lazily assigned model object id. `const`-constructible so shim types
/// can live in statics.
#[derive(Debug, Default)]
pub(crate) struct ObjId(OnceLock<usize>);

impl ObjId {
    pub(crate) const fn new() -> Self {
        ObjId(OnceLock::new())
    }

    pub(crate) fn get(&self) -> usize {
        *self
            .0
            .get_or_init(|| NEXT_OBJ.fetch_add(1, StdOrdering::Relaxed))
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The per-OS-thread handle tying a thread to the execution it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) engine: Arc<Engine>,
    pub(crate) tid: usize,
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Whether the calling thread is inside a model execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Panic payload used to tear an execution down without reporting the
/// unwind as a user panic.
pub(crate) struct AbortToken;

fn abort_panic() -> ! {
    std::panic::panic_any(AbortToken)
}

/// One visible operation a thread can request. Object ids come from
/// [`ObjId`]; `Join`'s payload is a thread id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Start,
    Yield,
    Spawn,
    Join(usize),
    Lock(usize),
    Unlock(usize),
    RwRead(usize),
    RwWrite(usize),
    RwUnlockRead(usize),
    RwUnlockWrite(usize),
    /// `(object, acquire)`
    AtomicLoad(usize, bool),
    /// `(object, release)`
    AtomicStore(usize, bool),
    /// `(object, acquire, release)`
    AtomicRmw(usize, bool, bool),
    CellRead(usize),
    CellWrite(usize),
    Send(usize),
    Recv(usize),
    TryRecv(usize),
    CloseSender(usize),
    CloseReceiver(usize),
    /// `(condvar, mutex)` — atomically release the mutex and enqueue.
    CondWait(usize, usize),
    /// Proceed once notified on the condvar.
    CondWake(usize),
    NotifyOne(usize),
    NotifyAll(usize),
}

impl Op {
    /// The object ids this operation touches (for the dependence relation
    /// behind sleep-set pruning).
    fn keys(&self) -> [Option<usize>; 2] {
        match *self {
            Op::Start | Op::Yield | Op::Spawn | Op::Join(_) => [None, None],
            Op::Lock(o)
            | Op::Unlock(o)
            | Op::RwRead(o)
            | Op::RwWrite(o)
            | Op::RwUnlockRead(o)
            | Op::RwUnlockWrite(o)
            | Op::AtomicLoad(o, _)
            | Op::AtomicStore(o, _)
            | Op::AtomicRmw(o, _, _)
            | Op::CellRead(o)
            | Op::CellWrite(o)
            | Op::Send(o)
            | Op::Recv(o)
            | Op::TryRecv(o)
            | Op::CloseSender(o)
            | Op::CloseReceiver(o)
            | Op::CondWake(o)
            | Op::NotifyOne(o)
            | Op::NotifyAll(o) => [Some(o), None],
            Op::CondWait(cv, m) => [Some(cv), Some(m)],
        }
    }

    /// Whether the operation commutes with other pure reads on the same
    /// object.
    fn pure_read(&self) -> bool {
        matches!(self, Op::AtomicLoad(_, _) | Op::CellRead(_) | Op::RwRead(_))
    }
}

/// Whether two pending operations are dependent (do not commute): they
/// touch a common object and are not both pure reads.
pub(crate) fn dependent(a: &Op, b: &Op) -> bool {
    if a.pure_read() && b.pure_read() {
        return false;
    }
    let bk = b.keys();
    a.keys()
        .iter()
        .flatten()
        .any(|k| bk.iter().flatten().any(|j| j == k))
}

/// What [`visible`] tells the shim after the operation was applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpOutcome {
    /// Not inside a model execution — perform the plain `std` behavior.
    Fallback,
    /// The execution is being torn down; skip the operation's effects.
    Aborted,
    /// Applied; proceed.
    Done,
    /// `Recv`/`TryRecv`: an item is ready to take.
    RecvReady,
    /// `Recv`/`TryRecv`: all senders gone and the queue is drained.
    Disconnected,
    /// `TryRecv`: queue empty but senders live.
    Empty,
    /// `Spawn`: the new thread's id.
    Spawned(usize),
}

/// Scheduling state of one model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThrState {
    /// Spawned at the model level; its OS thread has not registered yet.
    Unstarted,
    /// Blocked in [`visible`] with a pending operation, awaiting grant.
    Ready,
    /// Granted — executing user code until its next visible operation.
    Running,
    Finished,
}

pub(crate) struct Thr {
    pub(crate) state: ThrState,
    pub(crate) pending: Option<Op>,
    pub(crate) granted: bool,
    pub(crate) clock: VClock,
    /// Lock objects currently held (mutexes + rwlocks), for the
    /// lock-order graph and deadlock reports.
    pub(crate) held: Vec<usize>,
    /// Condvar handshake: set by a notify, consumed by `CondWake`.
    pub(crate) notified: bool,
}

impl Thr {
    /// The root thread of an execution (tid 0, fresh clock).
    pub(crate) fn root() -> Self {
        Thr::new(VClock::default())
    }

    fn new(clock: VClock) -> Self {
        Thr {
            state: ThrState::Unstarted,
            pending: None,
            granted: false,
            clock,
            held: Vec::new(),
            notified: false,
        }
    }
}

/// Model-level state of one synchronization object.
pub(crate) enum Obj {
    Mutex {
        owner: Option<usize>,
        vc: VClock,
    },
    Rw {
        writer: Option<usize>,
        readers: BTreeSet<usize>,
        vc: VClock,
    },
    Atomic {
        vc: VClock,
    },
    /// FastTrack-style epochs: the last write `(tid, clock[tid])` plus the
    /// last read epoch per thread since that write.
    Cell {
        write: Option<(usize, u64)>,
        reads: BTreeMap<usize, u64>,
    },
    Chan {
        len: usize,
        senders: usize,
        vc: VClock,
    },
    Cond {
        waiters: BTreeSet<usize>,
    },
}

pub(crate) struct EngState {
    pub(crate) threads: Vec<Thr>,
    pub(crate) objects: BTreeMap<usize, Obj>,
    pub(crate) choices: Vec<usize>,
    pub(crate) failure: Option<Failure>,
    pub(crate) aborting: bool,
    pub(crate) ops: usize,
    /// Held-lock → requested-lock edges observed this execution.
    pub(crate) lock_edges: BTreeSet<(usize, usize)>,
    pub(crate) handles: Vec<std::thread::JoinHandle<()>>,
    pub(crate) max_ops: usize,
    pub(crate) max_threads: usize,
}

/// One execution's engine: the state plus the condvar every participant
/// (threads and controller) parks on.
pub(crate) struct Engine {
    pub(crate) st: StdMutex<EngState>,
    pub(crate) cv: StdCondvar,
}

impl Engine {
    pub(crate) fn new(max_ops: usize, max_threads: usize) -> Engine {
        Engine {
            st: StdMutex::new(EngState {
                threads: Vec::new(),
                objects: BTreeMap::new(),
                choices: Vec::new(),
                failure: None,
                aborting: false,
                ops: 0,
                lock_edges: BTreeSet::new(),
                handles: Vec::new(),
                max_ops,
                max_threads,
            }),
            cv: StdCondvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> StdMutexGuard<'_, EngState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn fail(st: &mut EngState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind,
                message,
                schedule: encode_schedule(&st.choices),
            });
        }
        st.aborting = true;
    }
}

/// Requests one visible operation: publish it, wait for the grant, apply
/// its synchronization effects, and return the outcome to the shim.
pub(crate) fn visible(op: Op) -> OpOutcome {
    let Some(ctx) = current() else {
        return OpOutcome::Fallback;
    };
    let eng = ctx.engine;
    let mut st = eng.lock();
    if st.aborting {
        drop(st);
        return on_abort();
    }
    st.ops += 1;
    if st.ops > st.max_ops {
        let max = st.max_ops;
        Engine::fail(
            &mut st,
            FailureKind::Budget,
            format!("execution exceeded max_ops={max} visible operations (livelock?)"),
        );
        eng.cv.notify_all();
        drop(st);
        return on_abort();
    }
    st.threads[ctx.tid].pending = Some(op.clone());
    st.threads[ctx.tid].state = ThrState::Ready;
    eng.cv.notify_all();
    loop {
        if st.aborting {
            drop(st);
            return on_abort();
        }
        if st.threads[ctx.tid].granted {
            st.threads[ctx.tid].granted = false;
            break;
        }
        st = eng.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    let out = apply(&mut st, ctx.tid, &op);
    st.threads[ctx.tid].state = ThrState::Running;
    st.threads[ctx.tid].pending = None;
    if st.aborting {
        eng.cv.notify_all();
        drop(st);
        return on_abort();
    }
    out
}

/// During teardown: unwinding threads keep draining their drops quietly;
/// anything else propagates the abort.
fn on_abort() -> OpOutcome {
    if std::thread::panicking() {
        OpOutcome::Aborted
    } else {
        abort_panic()
    }
}

/// Whether `tid`'s pending operation can execute now.
pub(crate) fn enabled(st: &EngState, tid: usize) -> bool {
    let Some(op) = st.threads[tid].pending.as_ref() else {
        return false;
    };
    match *op {
        Op::Lock(o) => !matches!(st.objects.get(&o), Some(Obj::Mutex { owner: Some(_), .. })),
        Op::RwRead(o) => !matches!(
            st.objects.get(&o),
            Some(Obj::Rw {
                writer: Some(_),
                ..
            })
        ),
        Op::RwWrite(o) => match st.objects.get(&o) {
            Some(Obj::Rw {
                writer, readers, ..
            }) => writer.is_none() && readers.is_empty(),
            _ => true,
        },
        Op::Recv(o) => match st.objects.get(&o) {
            Some(Obj::Chan { len, senders, .. }) => *len > 0 || *senders == 0,
            _ => true,
        },
        Op::Join(t) => st
            .threads
            .get(t)
            .is_some_and(|t| t.state == ThrState::Finished),
        Op::CondWake(_) => st.threads[tid].notified,
        _ => true,
    }
}

/// Applies one granted operation's effects. Must be called with the
/// engine lock held, from the granted thread.
fn apply(st: &mut EngState, tid: usize, op: &Op) -> OpOutcome {
    // Each applied op is one event on the thread's clock.
    st.threads[tid].clock.tick(tid);
    match *op {
        Op::Start | Op::Yield => OpOutcome::Done,
        Op::Spawn => {
            if st.threads.len() >= st.max_threads {
                let max = st.max_threads;
                Engine::fail(
                    st,
                    FailureKind::Budget,
                    format!("execution exceeded max_threads={max}"),
                );
                return OpOutcome::Aborted;
            }
            let child = st.threads.len();
            let mut clock = st.threads[tid].clock.clone();
            clock.tick(child);
            st.threads.push(Thr::new(clock));
            OpOutcome::Spawned(child)
        }
        Op::Join(t) => {
            let child_clock = st.threads[t].clock.clone();
            st.threads[tid].clock.join(&child_clock);
            OpOutcome::Done
        }
        Op::Lock(o) => {
            record_lock_edges(st, tid, o);
            if let Obj::Mutex { owner, vc } = st.objects.entry(o).or_insert(Obj::Mutex {
                owner: None,
                vc: VClock::default(),
            }) {
                *owner = Some(tid);
                let vc = vc.clone();
                st.threads[tid].clock.join(&vc);
            }
            st.threads[tid].held.push(o);
            OpOutcome::Done
        }
        Op::Unlock(o) => {
            let thr_clock = st.threads[tid].clock.clone();
            if let Some(Obj::Mutex { owner, vc }) = st.objects.get_mut(&o) {
                *owner = None;
                vc.join(&thr_clock);
            }
            st.threads[tid].held.retain(|h| *h != o);
            OpOutcome::Done
        }
        Op::RwRead(o) | Op::RwWrite(o) => {
            record_lock_edges(st, tid, o);
            let write = matches!(op, Op::RwWrite(_));
            let obj = st.objects.entry(o).or_insert(Obj::Rw {
                writer: None,
                readers: BTreeSet::new(),
                vc: VClock::default(),
            });
            if let Obj::Rw {
                writer,
                readers,
                vc,
            } = obj
            {
                if write {
                    *writer = Some(tid);
                } else {
                    readers.insert(tid);
                }
                let vc = vc.clone();
                st.threads[tid].clock.join(&vc);
            }
            st.threads[tid].held.push(o);
            OpOutcome::Done
        }
        Op::RwUnlockRead(o) | Op::RwUnlockWrite(o) => {
            let thr_clock = st.threads[tid].clock.clone();
            if let Some(Obj::Rw {
                writer,
                readers,
                vc,
            }) = st.objects.get_mut(&o)
            {
                if matches!(op, Op::RwUnlockWrite(_)) {
                    *writer = None;
                } else {
                    readers.remove(&tid);
                }
                vc.join(&thr_clock);
            }
            st.threads[tid].held.retain(|h| *h != o);
            OpOutcome::Done
        }
        Op::AtomicLoad(o, acquire) => {
            if acquire {
                if let Some(Obj::Atomic { vc }) = st.objects.get(&o) {
                    let vc = vc.clone();
                    st.threads[tid].clock.join(&vc);
                }
            }
            st.objects.entry(o).or_insert(Obj::Atomic {
                vc: VClock::default(),
            });
            OpOutcome::Done
        }
        Op::AtomicStore(o, release) => {
            let thr_clock = st.threads[tid].clock.clone();
            let obj = st.objects.entry(o).or_insert(Obj::Atomic {
                vc: VClock::default(),
            });
            if release {
                if let Obj::Atomic { vc } = obj {
                    vc.join(&thr_clock);
                }
            }
            OpOutcome::Done
        }
        Op::AtomicRmw(o, acquire, release) => {
            let thr_clock = st.threads[tid].clock.clone();
            let obj = st.objects.entry(o).or_insert(Obj::Atomic {
                vc: VClock::default(),
            });
            if let Obj::Atomic { vc } = obj {
                if release {
                    vc.join(&thr_clock);
                }
                if acquire {
                    let vc = vc.clone();
                    st.threads[tid].clock.join(&vc);
                }
            }
            OpOutcome::Done
        }
        Op::CellRead(o) | Op::CellWrite(o) => {
            cell_access(st, tid, o, matches!(op, Op::CellWrite(_)))
        }
        Op::Send(o) => {
            let thr_clock = st.threads[tid].clock.clone();
            let obj = chan_entry(st, o);
            if let Obj::Chan { len, vc, .. } = obj {
                *len += 1;
                vc.join(&thr_clock);
            }
            OpOutcome::Done
        }
        Op::Recv(o) | Op::TryRecv(o) => {
            let (ready, disconnected, vc) = match chan_entry(st, o) {
                Obj::Chan { len, senders, vc } => {
                    if *len > 0 {
                        *len -= 1;
                        (true, false, Some(vc.clone()))
                    } else {
                        (false, *senders == 0, None)
                    }
                }
                _ => (false, false, None),
            };
            if let Some(vc) = vc {
                st.threads[tid].clock.join(&vc);
            }
            if ready {
                OpOutcome::RecvReady
            } else if disconnected {
                OpOutcome::Disconnected
            } else {
                OpOutcome::Empty
            }
        }
        Op::CloseSender(o) => {
            let thr_clock = st.threads[tid].clock.clone();
            if let Obj::Chan { senders, vc, .. } = chan_entry(st, o) {
                *senders = senders.saturating_sub(1);
                vc.join(&thr_clock);
            }
            OpOutcome::Done
        }
        Op::CloseReceiver(_) => OpOutcome::Done,
        Op::CondWait(cv, m) => {
            // Atomically: release the mutex and join the wait set. The
            // atomicity is the whole point of a condvar — a notify between
            // release and enqueue must not be lost.
            let thr_clock = st.threads[tid].clock.clone();
            if let Some(Obj::Mutex { owner, vc }) = st.objects.get_mut(&m) {
                *owner = None;
                vc.join(&thr_clock);
            }
            st.threads[tid].held.retain(|h| *h != m);
            let obj = st.objects.entry(cv).or_insert(Obj::Cond {
                waiters: BTreeSet::new(),
            });
            if let Obj::Cond { waiters } = obj {
                waiters.insert(tid);
            }
            st.threads[tid].notified = false;
            OpOutcome::Done
        }
        Op::CondWake(_) => {
            st.threads[tid].notified = false;
            OpOutcome::Done
        }
        Op::NotifyOne(cv) | Op::NotifyAll(cv) => {
            let all = matches!(op, Op::NotifyAll(_));
            let woken: Vec<usize> = match st.objects.get_mut(&cv) {
                Some(Obj::Cond { waiters }) => {
                    if all {
                        let w: Vec<usize> = waiters.iter().copied().collect();
                        waiters.clear();
                        w
                    } else if let Some(first) = waiters.iter().next().copied() {
                        waiters.remove(&first);
                        vec![first]
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            };
            for w in woken {
                st.threads[w].notified = true;
            }
            OpOutcome::Done
        }
    }
}

/// FastTrack-style race check for a [`crate::cell::RaceCell`] access.
fn cell_access(st: &mut EngState, tid: usize, o: usize, is_write: bool) -> OpOutcome {
    let epoch = st.threads[tid].clock.get(tid);
    let clock = st.threads[tid].clock.clone();
    let obj = st.objects.entry(o).or_insert(Obj::Cell {
        write: None,
        reads: BTreeMap::new(),
    });
    let Obj::Cell { write, reads } = obj else {
        return OpOutcome::Done;
    };
    let mut race: Option<String> = None;
    if let Some((wt, we)) = *write {
        if wt != tid && clock.get(wt) < we {
            let kind = if is_write {
                "write/write"
            } else {
                "write/read"
            };
            race = Some(format!(
                "{kind} race on cell #{o}: thread {wt}'s write is unordered with \
                 thread {tid}'s {}",
                if is_write { "write" } else { "read" }
            ));
        }
    }
    if is_write && race.is_none() {
        for (&rt, &re) in reads.iter() {
            if rt != tid && clock.get(rt) < re {
                race = Some(format!(
                    "read/write race on cell #{o}: thread {rt}'s read is unordered \
                     with thread {tid}'s write"
                ));
                break;
            }
        }
    }
    if is_write {
        *write = Some((tid, epoch));
        reads.clear();
    } else {
        reads.insert(tid, epoch);
    }
    if let Some(message) = race {
        Engine::fail(st, FailureKind::DataRace, message);
        return OpOutcome::Aborted;
    }
    OpOutcome::Done
}

fn chan_entry(st: &mut EngState, o: usize) -> &mut Obj {
    st.objects.entry(o).or_insert(Obj::Chan {
        len: 0,
        senders: 1,
        vc: VClock::default(),
    })
}

/// Records held→requested edges in the lock-order graph.
fn record_lock_edges(st: &mut EngState, tid: usize, requested: usize) {
    let held: Vec<usize> = st.threads[tid].held.clone();
    for h in held {
        if h != requested {
            st.lock_edges.insert((h, requested));
        }
    }
}

/// Registers a channel with `n` initial senders (called at construction
/// time so sender counting starts exact even before the first send).
pub(crate) fn register_chan(o: usize) {
    if let Some(ctx) = current() {
        let mut st = ctx.engine.lock();
        chan_entry(&mut st, o);
    }
}

/// Spawns a model thread running `body` and returns its model tid, or
/// `None` when called outside an execution (the shim falls back to
/// `std::thread::spawn`).
pub(crate) fn spawn_thread<F>(body: F) -> Option<usize>
where
    F: FnOnce() + Send + 'static,
{
    let ctx = current()?;
    let child = match visible(Op::Spawn) {
        OpOutcome::Spawned(t) => t,
        OpOutcome::Fallback => return None,
        // Teardown: behave as if the spawn never ran.
        _ => abort_panic(),
    };
    let engine = Arc::clone(&ctx.engine);
    let handle = std::thread::Builder::new()
        .name(format!("cnnre-model-{child}"))
        .spawn(move || run_thread(engine, child, body))
        .ok()?;
    ctx.engine.lock().handles.push(handle);
    Some(child)
}

/// The body wrapper for every model thread (including the root): register,
/// run, and report the outcome to the engine.
pub(crate) fn run_thread<F>(engine: Arc<Engine>, tid: usize, body: F)
where
    F: FnOnce(),
{
    set_ctx(Some(Ctx {
        engine: Arc::clone(&engine),
        tid,
    }));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _ = visible(Op::Start);
        body();
    }));
    set_ctx(None);
    let mut st = engine.lock();
    st.threads[tid].state = ThrState::Finished;
    st.threads[tid].pending = None;
    if let Err(payload) = result {
        if !payload.is::<AbortToken>() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Engine::fail(
                &mut st,
                FailureKind::Panic,
                format!("thread {tid} panicked: {msg}"),
            );
        }
    }
    engine.cv.notify_all();
}

/// Builds the MC002 deadlock message: every blocked thread's pending
/// operation, plus a lock-order cycle if the graph contains one.
pub(crate) fn deadlock_message(st: &EngState) -> String {
    let mut parts = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        if t.state == ThrState::Ready {
            if let Some(op) = &t.pending {
                parts.push(format!("thread {tid} blocked at {op:?}"));
            }
        }
    }
    let mut msg = format!("deadlock: {}", parts.join("; "));
    if let Some(cycle) = find_lock_cycle(&st.lock_edges) {
        let path: Vec<String> = cycle.iter().map(|o| format!("#{o}")).collect();
        msg.push_str(&format!("; lock-order cycle: {}", path.join(" -> ")));
    }
    msg
}

/// Finds any cycle in the held→requested lock graph, returned as a node
/// path ending where it starts (`[a, b, a]`).
fn find_lock_cycle(edges: &BTreeSet<(usize, usize)>) -> Option<Vec<usize>> {
    let nodes: BTreeSet<usize> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    for &start in &nodes {
        let mut path = vec![start];
        if walk_cycle(edges, start, start, &mut path, 0) {
            return Some(path);
        }
    }
    None
}

fn walk_cycle(
    edges: &BTreeSet<(usize, usize)>,
    start: usize,
    at: usize,
    path: &mut Vec<usize>,
    depth: usize,
) -> bool {
    if depth > 16 {
        return false;
    }
    for &(a, b) in edges {
        if a != at {
            continue;
        }
        if b == start {
            path.push(b);
            return true;
        }
        if path.contains(&b) {
            continue;
        }
        path.push(b);
        if walk_cycle(edges, start, b, path, depth + 1) {
            return true;
        }
        path.pop();
    }
    false
}
