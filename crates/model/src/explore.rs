//! The exploration driver: runs one execution at a time under a
//! controller that picks which Ready thread proceeds at every visible
//! operation, then backtracks depth-first over those decisions.
//!
//! Pruning is two-fold:
//! - **Sleep sets** (Godefroid-style): after exploring choice `c` at a
//!   node, siblings whose pending operations are independent of `c`'s
//!   stay asleep in the re-descended branch — interleavings that only
//!   commute independent operations are never re-run.
//! - **Preemption bound** (CHESS-style): switching away from a thread
//!   that could continue costs one preemption; executions needing more
//!   than `Config::preemption_bound` are cut. Switches at blocking points
//!   are free, so full mutual exclusion is still explored.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::report::{decode_schedule, encode_schedule, Config, Failure, FailureKind, Stats};
use crate::runtime::{self, deadlock_message, enabled, Engine, Op, Thr, ThrState};

/// One recorded scheduling decision.
struct NodeRec {
    /// Thread ids that were enabled, ascending.
    enabled: Vec<usize>,
    /// Pending operation of every Ready thread at the decision.
    ops: BTreeMap<usize, Op>,
    chosen: usize,
    last_ran: Option<usize>,
    last_ran_enabled: bool,
    /// Preemptions consumed before this decision.
    preempts_before: usize,
    /// Sleep set in force at this decision (meaningful on first visit).
    sleep: BTreeSet<usize>,
}

/// A decision node on the DFS stack: the recorded decision plus which
/// alternatives were already explored.
struct PathNode {
    rec: NodeRec,
    tried: BTreeSet<usize>,
}

enum Prune {
    None,
    /// Every enabled thread was asleep — an equivalent interleaving was
    /// already explored.
    Sleep,
    /// Only bound-exceeding choices remained.
    Bound,
}

struct Plan {
    forced: Vec<usize>,
    /// Sleep set in force at the first fresh decision.
    init_sleep: BTreeSet<usize>,
    /// Replay mode: past the forced prefix run the default policy with no
    /// pruning, and report forced-choice mismatches as MC004.
    replay: bool,
}

struct ExecResult {
    nodes: Vec<NodeRec>,
    failure: Option<Failure>,
    prune: Prune,
    ops: usize,
}

/// Runs one execution of `f` under the plan and returns what happened.
fn run_execution<F>(cfg: &Config, f: Arc<F>, plan: &Plan) -> ExecResult
where
    F: Fn() + Send + Sync + 'static,
{
    let eng = Arc::new(Engine::new(cfg.max_ops, cfg.max_threads));
    {
        let mut st = eng.lock();
        st.threads.push(Thr::root());
    }
    {
        let eng2 = Arc::clone(&eng);
        let root_f = Arc::clone(&f);
        let handle = std::thread::Builder::new()
            .name("cnnre-model-0".to_owned())
            .spawn(move || runtime::run_thread(eng2, 0, move || root_f()))
            .unwrap_or_else(|e| panic!("cnnre-model: could not spawn root thread: {e}"));
        eng.lock().handles.push(handle);
    }

    let mut nodes: Vec<NodeRec> = Vec::new();
    let mut prune = Prune::None;
    let mut last_ran: Option<usize> = None;
    let mut preempts = 0usize;
    let mut cur_sleep: BTreeSet<usize> = BTreeSet::new();

    let mut st = eng.lock();
    loop {
        while !st.aborting
            && st
                .threads
                .iter()
                .any(|t| matches!(t.state, ThrState::Unstarted | ThrState::Running))
        {
            st = eng
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.failure.is_some() || st.aborting {
            break;
        }
        if st.threads.iter().all(|t| t.state == ThrState::Finished) {
            break;
        }

        let enabled_set: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].state == ThrState::Ready && enabled(&st, t))
            .collect();
        if enabled_set.is_empty() {
            let msg = deadlock_message(&st);
            Engine::fail(&mut st, FailureKind::Deadlock, msg);
            break;
        }
        let ops: BTreeMap<usize, Op> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThrState::Ready)
            .filter_map(|(i, t)| t.pending.clone().map(|op| (i, op)))
            .collect();

        let idx = nodes.len();
        let last_ran_enabled = last_ran.is_some_and(|l| enabled_set.contains(&l));
        if idx == plan.forced.len() && !plan.replay {
            cur_sleep = plan.init_sleep.clone();
        }

        let choice = if idx < plan.forced.len() {
            let c = plan.forced[idx];
            if !enabled_set.contains(&c) {
                let msg = if plan.replay {
                    format!(
                        "replayed schedule diverged at step {idx}: thread {c} is not \
                         enabled (enabled: {enabled_set:?}) — schedule from a \
                         different build or a nondeterministic program"
                    )
                } else {
                    format!(
                        "exploration re-execution diverged at step {idx}: thread {c} \
                         not enabled — the checked closure is nondeterministic"
                    )
                };
                Engine::fail(&mut st, FailureKind::Diverged, msg);
                break;
            }
            c
        } else if plan.replay {
            // Past the schedule: default policy, no pruning.
            if last_ran_enabled {
                last_ran.unwrap_or(enabled_set[0])
            } else {
                enabled_set[0]
            }
        } else {
            let feasible = |c: usize| {
                Some(c) == last_ran
                    || !last_ran_enabled
                    || cfg.preemption_bound.is_none_or(|b| preempts < b)
            };
            let awake: Vec<usize> = enabled_set
                .iter()
                .copied()
                .filter(|c| !cur_sleep.contains(c))
                .collect();
            if awake.is_empty() {
                prune = Prune::Sleep;
                break;
            }
            // Prefer continuing the same thread (free), else the lowest
            // awake thread we can still afford to preempt to.
            let pick = if last_ran_enabled && last_ran.is_some_and(|l| awake.contains(&l)) {
                last_ran
            } else {
                awake.iter().copied().find(|&c| feasible(c))
            };
            match pick {
                Some(c) => c,
                None => {
                    prune = Prune::Bound;
                    break;
                }
            }
        };

        if last_ran.is_some_and(|l| l != choice) && last_ran_enabled {
            preempts += 1;
        }
        let preempts_before = if last_ran.is_some_and(|l| l != choice) && last_ran_enabled {
            preempts - 1
        } else {
            preempts
        };
        nodes.push(NodeRec {
            enabled: enabled_set,
            ops: ops.clone(),
            chosen: choice,
            last_ran,
            last_ran_enabled,
            preempts_before,
            sleep: cur_sleep.clone(),
        });
        if idx >= plan.forced.len() && !plan.replay {
            // Sleep-set propagation: siblings independent of the chosen
            // operation stay asleep in the child.
            if let Some(op_c) = ops.get(&choice).cloned() {
                cur_sleep = cur_sleep
                    .iter()
                    .copied()
                    .filter(|t| {
                        ops.get(t)
                            .is_some_and(|op_t| !runtime::dependent(op_t, &op_c))
                    })
                    .collect();
            }
        }

        st.choices.push(choice);
        st.threads[choice].granted = true;
        st.threads[choice].state = ThrState::Running;
        last_ran = Some(choice);
        eng.cv.notify_all();
    }

    // Teardown: wake everyone, wait for all threads to finish, join the
    // OS handles so no model thread outlives its execution.
    st.aborting = true;
    eng.cv.notify_all();
    while !st.threads.iter().all(|t| t.state == ThrState::Finished) {
        st = eng
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let handles = std::mem::take(&mut st.handles);
    let failure = st.failure.clone();
    let ops_count = st.ops;
    drop(st);
    for h in handles {
        let _ = h.join();
    }
    ExecResult {
        nodes,
        failure,
        prune,
        ops: ops_count,
    }
}

/// Exhaustively explores interleavings of `f` under `cfg`. Returns
/// exploration statistics, or the first failure found (with its replay
/// schedule).
///
/// `f` runs once per execution, on a fresh root thread; it must be
/// deterministic apart from scheduling (same visible operations under the
/// same schedule), or exploration reports MC004.
pub fn explore_with<F>(cfg: &Config, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut stats = Stats::default();
    let mut path: Vec<PathNode> = Vec::new();
    let mut init_sleep: BTreeSet<usize> = BTreeSet::new();
    loop {
        if stats.executions >= cfg.max_executions {
            return Err(Failure {
                kind: FailureKind::Budget,
                message: format!(
                    "exploration exceeded max_executions={} (state space too large \
                     for the bound — shrink the test or raise the budget)",
                    cfg.max_executions
                ),
                schedule: encode_schedule(&path.iter().map(|n| n.rec.chosen).collect::<Vec<_>>()),
            });
        }
        let plan = Plan {
            forced: path.iter().map(|n| n.rec.chosen).collect(),
            init_sleep: init_sleep.clone(),
            replay: false,
        };
        let res = run_execution(cfg, Arc::clone(&f), &plan);
        stats.executions += 1;
        stats.ops += res.ops;
        stats.max_depth = stats.max_depth.max(res.nodes.len());
        if let Some(failure) = res.failure {
            return Err(failure);
        }
        match res.prune {
            Prune::Sleep => stats.sleep_prunes += 1,
            Prune::Bound => stats.bound_prunes += 1,
            Prune::None => {}
        }
        for (i, rec) in res.nodes.into_iter().enumerate() {
            if i >= path.len() {
                let mut tried = BTreeSet::new();
                tried.insert(rec.chosen);
                path.push(PathNode { rec, tried });
            }
        }

        // Backtrack: find the deepest node with an unexplored, awake,
        // bound-feasible alternative.
        loop {
            let Some(node) = path.last_mut() else {
                return Ok(stats);
            };
            let feasible = |c: usize, rec: &NodeRec| {
                Some(c) == rec.last_ran
                    || !rec.last_ran_enabled
                    || cfg.preemption_bound.is_none_or(|b| rec.preempts_before < b)
            };
            let cand = node.rec.enabled.iter().copied().find(|&c| {
                !node.tried.contains(&c) && !node.rec.sleep.contains(&c) && feasible(c, &node.rec)
            });
            match cand {
                Some(c) => {
                    let op_c = node.rec.ops.get(&c).cloned();
                    init_sleep = node
                        .rec
                        .sleep
                        .iter()
                        .chain(node.tried.iter())
                        .copied()
                        .filter(|t| {
                            *t != c
                                && match (&op_c, node.rec.ops.get(t)) {
                                    (Some(oc), Some(ot)) => !runtime::dependent(ot, oc),
                                    _ => false,
                                }
                        })
                        .collect();
                    node.tried.insert(c);
                    node.rec.chosen = c;
                    break;
                }
                None => {
                    path.pop();
                }
            }
        }
    }
}

/// [`explore_with`] under the default [`Config`].
pub fn explore<F>(f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with(&Config::default(), f)
}

/// Replays one execution of `f` under a printable schedule string (as
/// found in a [`Failure`]), returning the failure it reproduces.
pub fn replay<F>(schedule: &str, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let cfg = Config::default();
    let forced = decode_schedule(schedule).map_err(|e| Failure {
        kind: FailureKind::Diverged,
        message: e,
        schedule: schedule.trim().to_owned(),
    })?;
    let plan = Plan {
        forced,
        init_sleep: BTreeSet::new(),
        replay: true,
    };
    let res = run_execution(&cfg, Arc::new(f), &plan);
    match res.failure {
        Some(failure) => Err(failure),
        None => Ok(Stats {
            executions: 1,
            ops: res.ops,
            max_depth: res.nodes.len(),
            ..Stats::default()
        }),
    }
}

/// The test entry point: explores `f` (or, when `CNNRE_MODEL_SCHEDULE` is
/// set, replays that schedule) and panics with the full report on any
/// failure.
pub fn check<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(&Config::default(), f)
}

/// [`check`] under an explicit [`Config`].
pub fn check_with<F>(cfg: &Config, f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let env = std::env::var("CNNRE_MODEL_SCHEDULE").unwrap_or_default();
    let result = if env.trim().is_empty() {
        explore_with(cfg, f)
    } else {
        replay(&env, f)
    };
    match result {
        Ok(stats) => stats,
        Err(failure) => panic!("{failure}"),
    }
}
