//! Vector clocks: the happens-before engine behind the data-race detector.
//!
//! Each model thread carries a [`VClock`]; every visible operation
//! increments the thread's own component, and synchronization objects
//! (mutexes, channels, acquire/release atomics) carry clocks that threads
//! join on acquire and publish into on release. Two accesses are ordered
//! iff one's full clock is ≤ the other's at the later access — the
//! FastTrack-style epoch comparison in `runtime::Obj::Cell` needs only the
//! accessor's component (`tid`, `clock[tid]`) per read/write.

/// A vector clock over model-thread ids. Indexing past the end reads 0,
/// so clocks grow lazily as threads spawn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// The component for thread `tid` (0 when never ticked).
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances this thread's own component by one (one event executed).
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: after `self.join(other)`, everything ordered
    /// before `other` is ordered before `self` too.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::default();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = VClock::default();
        a.tick(0);
        let mut b = VClock::default();
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
    }
}
