//! Drop-in `std::sync` surface: `use cnnre_model::sync::...` wherever you
//! would write `use std::sync::...`.
//!
//! Without the `model-check` feature this module is a transparent
//! re-export of `std::sync` — zero cost, identical types. With the
//! feature, the primitives wrap their `std` counterparts and announce
//! every acquire/release/atomic access to the exploration scheduler
//! ([`crate::check`]) when the calling thread is inside a model
//! execution; outside one they behave exactly like `std`.

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use std::sync::atomic;
    pub use std::sync::mpsc;
    pub use std::sync::{
        Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock,
        RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult, Weak,
    };
}

#[cfg(feature = "model-check")]
mod imp {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    use crate::runtime::{visible, ObjId, Op, OpOutcome};

    // Untracked by the model: `Arc` refcounts never race by construction,
    // and `OnceLock` initialization runs under its own internal lock.
    pub use std::sync::{
        Arc, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult, Weak,
    };

    /// A mutex that reports its lock/unlock pairs to the model scheduler.
    pub struct Mutex<T: ?Sized> {
        id: ObjId,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex (usable in statics).
        pub const fn new(t: T) -> Mutex<T> {
            Mutex {
                id: ObjId::new(),
                inner: std::sync::Mutex::new(t),
            }
        }

        /// Consumes the mutex, returning the underlying data.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex, blocking the model thread until it is free.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match visible(Op::Lock(self.id.get())) {
                OpOutcome::Fallback => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock: self,
                        inner: Some(g),
                        model: false,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        model: false,
                    })),
                },
                _ => {
                    // The model grant guarantees exclusivity; the inner
                    // lock is free (its last owner released before the
                    // model-level unlock was granted). Poisoning from
                    // aborted executions is expected and tolerated.
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(g),
                        model: true,
                    })
                }
            }
        }

        /// Mutable access without locking (exclusive borrow proves unique
        /// ownership, so no visible operation is recorded).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; announces the release on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: bool,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("mutex guard used after release")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("mutex guard used after release")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                // Release the OS mutex *before* announcing the model-level
                // unlock, so the next granted locker never blocks on it.
                drop(g);
                if self.model {
                    let _ = visible(Op::Unlock(self.lock.id.get()));
                }
            }
        }
    }

    /// A reader–writer lock that reports shared/exclusive acquisition to
    /// the model scheduler.
    pub struct RwLock<T: ?Sized> {
        id: ObjId,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new lock (usable in statics).
        pub const fn new(t: T) -> RwLock<T> {
            RwLock {
                id: ObjId::new(),
                inner: std::sync::RwLock::new(t),
            }
        }

        /// Consumes the lock, returning the underlying data.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            match visible(Op::RwRead(self.id.get())) {
                OpOutcome::Fallback => match self.inner.read() {
                    Ok(g) => Ok(RwLockReadGuard {
                        lock: self,
                        inner: Some(g),
                        model: false,
                    }),
                    Err(e) => Err(PoisonError::new(RwLockReadGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        model: false,
                    })),
                },
                _ => {
                    let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
                    Ok(RwLockReadGuard {
                        lock: self,
                        inner: Some(g),
                        model: true,
                    })
                }
            }
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            match visible(Op::RwWrite(self.id.get())) {
                OpOutcome::Fallback => match self.inner.write() {
                    Ok(g) => Ok(RwLockWriteGuard {
                        lock: self,
                        inner: Some(g),
                        model: false,
                    }),
                    Err(e) => Err(PoisonError::new(RwLockWriteGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        model: false,
                    })),
                },
                _ => {
                    let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
                    Ok(RwLockWriteGuard {
                        lock: self,
                        inner: Some(g),
                        model: true,
                    })
                }
            }
        }

        /// Mutable access without locking.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: bool,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("read guard used after release")
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g);
                if self.model {
                    let _ = visible(Op::RwUnlockRead(self.lock.id.get()));
                }
            }
        }
    }

    /// Exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: bool,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("write guard used after release")
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("write guard used after release")
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(g) = self.inner.take() {
                drop(g);
                if self.model {
                    let _ = visible(Op::RwUnlockWrite(self.lock.id.get()));
                }
            }
        }
    }

    /// A condition variable with modeled wait/notify (lost wakeups show up
    /// as MC002 deadlocks, exactly as they would hang in production).
    pub struct Condvar {
        id: ObjId,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable (usable in statics).
        pub const fn new() -> Condvar {
            Condvar {
                id: ObjId::new(),
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically releases `guard`'s mutex and waits for a
        /// notification, then reacquires the mutex.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let mut guard = guard;
            let lock = guard.lock;
            let model = guard.model;
            let std_g = guard.inner.take();
            // The guard's Drop must not announce an unlock: in model mode
            // the release happens atomically inside CondWait, in fallback
            // mode inside `std::sync::Condvar::wait`.
            std::mem::forget(guard);
            if model {
                drop(std_g);
                let _ = visible(Op::CondWait(self.id.get(), lock.id.get()));
                let _ = visible(Op::CondWake(self.id.get()));
                lock.lock()
            } else {
                let std_g = std_g.expect("condvar wait on released guard");
                match self.inner.wait(std_g) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: false,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(e.into_inner()),
                        model: false,
                    })),
                }
            }
        }

        /// Wakes one waiter (the lowest-id model thread, for determinism).
        pub fn notify_one(&self) {
            if matches!(visible(Op::NotifyOne(self.id.get())), OpOutcome::Fallback) {
                self.inner.notify_one();
            }
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            if matches!(visible(Op::NotifyAll(self.id.get())), OpOutcome::Fallback) {
                self.inner.notify_all();
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// Modeled atomics: acquire loads and release stores create
    /// happens-before edges; `Relaxed` creates none.
    pub mod atomic {
        use crate::runtime::{visible, ObjId, Op};

        pub use std::sync::atomic::Ordering;

        fn is_acquire(order: Ordering) -> bool {
            matches!(
                order,
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
            )
        }

        fn is_release(order: Ordering) -> bool {
            matches!(
                order,
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
            )
        }

        macro_rules! model_int_atomic {
            ($(#[$meta:meta])* $name:ident, $std:ident, $raw:ty) => {
                $(#[$meta])*
                pub struct $name {
                    id: ObjId,
                    inner: std::sync::atomic::$std,
                }

                impl $name {
                    /// Creates a new atomic (usable in statics).
                    pub const fn new(v: $raw) -> Self {
                        $name { id: ObjId::new(), inner: std::sync::atomic::$std::new(v) }
                    }

                    /// Loads the value; acquire orderings join the
                    /// object's clock into the thread's.
                    pub fn load(&self, order: Ordering) -> $raw {
                        let _ = visible(Op::AtomicLoad(self.id.get(), is_acquire(order)));
                        self.inner.load(order)
                    }

                    /// Stores a value; release orderings publish the
                    /// thread's clock into the object's.
                    pub fn store(&self, v: $raw, order: Ordering) {
                        let _ = visible(Op::AtomicStore(self.id.get(), is_release(order)));
                        self.inner.store(v, order);
                    }

                    /// Atomic swap (a read-modify-write).
                    pub fn swap(&self, v: $raw, order: Ordering) -> $raw {
                        self.rmw(order);
                        self.inner.swap(v, order)
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $raw, order: Ordering) -> $raw {
                        self.rmw(order);
                        self.inner.fetch_add(v, order)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, v: $raw, order: Ordering) -> $raw {
                        self.rmw(order);
                        self.inner.fetch_sub(v, order)
                    }

                    /// Atomic maximum, returning the previous value.
                    pub fn fetch_max(&self, v: $raw, order: Ordering) -> $raw {
                        self.rmw(order);
                        self.inner.fetch_max(v, order)
                    }

                    /// Atomic minimum, returning the previous value.
                    pub fn fetch_min(&self, v: $raw, order: Ordering) -> $raw {
                        self.rmw(order);
                        self.inner.fetch_min(v, order)
                    }

                    /// Compare-and-exchange; the success ordering decides
                    /// the happens-before edges.
                    pub fn compare_exchange(
                        &self,
                        current: $raw,
                        new: $raw,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        self.rmw(success);
                        self.inner.compare_exchange(current, new, success, failure)
                    }

                    /// Weak compare-and-exchange. Under the model this maps
                    /// to the strong variant: spurious failures are
                    /// scheduler nondeterminism the replay machinery cannot
                    /// reproduce.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $raw,
                        new: $raw,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$raw, $raw> {
                        self.rmw(success);
                        self.inner.compare_exchange(current, new, success, failure)
                    }

                    /// Mutable access without atomics (exclusive borrow).
                    pub fn get_mut(&mut self) -> &mut $raw {
                        self.inner.get_mut()
                    }

                    /// Consumes the atomic, returning the value.
                    pub fn into_inner(self) -> $raw {
                        self.inner.into_inner()
                    }

                    fn rmw(&self, order: Ordering) {
                        let _ = visible(Op::AtomicRmw(
                            self.id.get(),
                            is_acquire(order),
                            is_release(order),
                        ));
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        $name::new(<$raw>::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        self.inner.fmt(f)
                    }
                }
            };
        }

        model_int_atomic!(
            /// Modeled `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );
        model_int_atomic!(
            /// Modeled `AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64
        );
        model_int_atomic!(
            /// Modeled `AtomicU8`.
            AtomicU8,
            AtomicU8,
            u8
        );

        /// Modeled `AtomicBool`.
        pub struct AtomicBool {
            id: ObjId,
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new atomic flag (usable in statics).
            pub const fn new(v: bool) -> Self {
                AtomicBool {
                    id: ObjId::new(),
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Loads the flag.
            pub fn load(&self, order: Ordering) -> bool {
                let _ = visible(Op::AtomicLoad(self.id.get(), is_acquire(order)));
                self.inner.load(order)
            }

            /// Stores the flag.
            pub fn store(&self, v: bool, order: Ordering) {
                let _ = visible(Op::AtomicStore(self.id.get(), is_release(order)));
                self.inner.store(v, order);
            }

            /// Atomic swap.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                let _ = visible(Op::AtomicRmw(
                    self.id.get(),
                    is_acquire(order),
                    is_release(order),
                ));
                self.inner.swap(v, order)
            }

            /// Atomic OR, returning the previous value.
            pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
                let _ = visible(Op::AtomicRmw(
                    self.id.get(),
                    is_acquire(order),
                    is_release(order),
                ));
                self.inner.fetch_or(v, order)
            }

            /// Atomic AND, returning the previous value.
            pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
                let _ = visible(Op::AtomicRmw(
                    self.id.get(),
                    is_acquire(order),
                    is_release(order),
                ));
                self.inner.fetch_and(v, order)
            }

            /// Compare-and-exchange on the flag.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                let _ = visible(Op::AtomicRmw(
                    self.id.get(),
                    is_acquire(success),
                    is_release(success),
                ));
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Mutable access without atomics (exclusive borrow).
            pub fn get_mut(&mut self) -> &mut bool {
                self.inner.get_mut()
            }
        }

        impl Default for AtomicBool {
            fn default() -> Self {
                AtomicBool::new(false)
            }
        }

        impl std::fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    }

    /// Modeled multi-producer single-consumer channels. Values travel
    /// through a real `std::sync::mpsc` channel; the model tracks queue
    /// length and live-sender count for enabledness and happens-before.
    pub mod mpsc {
        use std::sync::Arc;

        use crate::runtime::{register_chan, visible, ObjId, Op, OpOutcome};

        pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

        struct ChanMeta {
            id: ObjId,
        }

        /// Tracks the last sender clone; its drop disconnects the channel.
        struct SenderToken {
            chan: Arc<ChanMeta>,
        }

        impl Drop for SenderToken {
            fn drop(&mut self) {
                let _ = visible(Op::CloseSender(self.chan.id.get()));
            }
        }

        /// Sending half; clones share one model-level sender count.
        pub struct Sender<T> {
            inner: std::sync::mpsc::Sender<T>,
            token: Arc<SenderToken>,
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Sender {
                    inner: self.inner.clone(),
                    token: Arc::clone(&self.token),
                }
            }
        }

        impl<T> Sender<T> {
            /// Sends a value (a release operation on the channel).
            pub fn send(&self, t: T) -> Result<(), SendError<T>> {
                let _ = visible(Op::Send(self.token.chan.id.get()));
                self.inner.send(t)
            }
        }

        /// Receiving half.
        pub struct Receiver<T> {
            inner: std::sync::mpsc::Receiver<T>,
            chan: Arc<ChanMeta>,
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let _ = visible(Op::CloseReceiver(self.chan.id.get()));
            }
        }

        impl<T> Receiver<T> {
            /// Blocks the model thread until a value or disconnection.
            pub fn recv(&self) -> Result<T, RecvError> {
                match visible(Op::Recv(self.chan.id.get())) {
                    OpOutcome::Fallback => self.inner.recv(),
                    OpOutcome::RecvReady => self.inner.try_recv().map_err(|_| RecvError),
                    _ => Err(RecvError),
                }
            }

            /// Non-blocking receive.
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                match visible(Op::TryRecv(self.chan.id.get())) {
                    OpOutcome::Fallback | OpOutcome::RecvReady => self.inner.try_recv(),
                    OpOutcome::Disconnected => Err(TryRecvError::Disconnected),
                    _ => Err(TryRecvError::Empty),
                }
            }
        }

        /// Creates a modeled unbounded channel.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = std::sync::mpsc::channel();
            let chan = Arc::new(ChanMeta { id: ObjId::new() });
            register_chan(chan.id.get());
            (
                Sender {
                    inner: tx,
                    token: Arc::new(SenderToken {
                        chan: Arc::clone(&chan),
                    }),
                },
                Receiver { inner: rx, chan },
            )
        }
    }
}

pub use imp::*;
