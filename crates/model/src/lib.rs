//! cnnre-model: a schedule-exploring concurrency checker with
//! std-transparent shims — the repo's in-tree, zero-dependency analogue
//! of loom, in the same sanitizer philosophy as cnnre-audit's hooks.
//!
//! Concurrent code in this workspace is written against [`sync`],
//! [`thread`], and [`cell`] instead of `std::sync`/`std::thread` (the
//! SY001 lint enforces this in `core`, `accel`, and `trace`). In normal
//! builds the shims are transparent re-exports of `std` — release
//! binaries are bit-for-bit what they would be without this crate. With
//! the `model-check` feature (enabled workspace-wide for test builds via
//! the root dev-dependencies), code running inside [`check`] /
//! [`explore`] is driven by a cooperative scheduler that exhaustively
//! explores thread interleavings:
//!
//! - every interleaving up to a **preemption bound** (default 2) is run,
//!   with **sleep-set pruning** skipping interleavings that only commute
//!   independent operations;
//! - a **vector-clock happens-before engine** reports unordered accesses
//!   to [`cell::RaceCell`] data as **MC001** data races;
//! - globally blocked states are **MC002** deadlocks, with a lock-order
//!   cycle from the held→requested graph when one exists;
//! - panics on model threads are **MC003**, replay divergence **MC004**,
//!   and exceeded exploration budgets **MC005**;
//! - every failure carries a printable schedule string that reproduces
//!   it deterministically: `CNNRE_MODEL_SCHEDULE=0.0.1.0.2 cargo test …`
//!   or [`replay`] in code.
//!
//! ```ignore
//! use cnnre_model::{cell::RaceCell, sync::Arc, thread};
//!
//! cnnre_model::check(|| {
//!     let data = Arc::new(RaceCell::new(0u32));
//!     let d = Arc::clone(&data);
//!     let t = thread::spawn(move || d.set(1)); // MC001: unordered with...
//!     data.set(2);                             // ...this write
//!     t.join().expect("joined");
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod report;
pub mod sync;
pub mod thread;

#[cfg(feature = "model-check")]
mod clock;
#[cfg(feature = "model-check")]
mod explore;
#[cfg(feature = "model-check")]
mod runtime;

#[cfg(feature = "model-check")]
pub use explore::{check, check_with, explore, explore_with, replay};
pub use report::{decode_schedule, encode_schedule, Config, Failure, FailureKind, Stats};

/// Whether this build routes the shims through the exploration scheduler
/// (true iff the `model-check` feature is on). Release builds must see
/// `false`; `scripts/model.sh` checks both directions.
#[must_use]
pub const fn is_model_build() -> bool {
    cfg!(feature = "model-check")
}
