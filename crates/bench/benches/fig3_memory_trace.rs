//! Times trace generation + segmentation and prints Figure 3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_bench::experiments::{fig3, trace_of};
use cnnre_nn::models::lenet;
use cnnre_trace::observe::observe;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", fig3::render(&fig3::run(97)));

    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let trace = trace_of(&net).trace;
    let mut g = c.benchmark_group("fig3");
    g.sample_size(30);
    g.bench_function("trace_generation_lenet", |b| b.iter(|| trace_of(black_box(&net))));
    g.bench_function("trace_observation_lenet", |b| b.iter(|| observe(black_box(&trace))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
