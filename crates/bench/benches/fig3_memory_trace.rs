//! Times trace generation + segmentation and prints Figure 3.

use std::hint::black_box;

use cnnre_bench::experiments::{fig3, trace_of};
use cnnre_nn::models::lenet;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::observe::observe;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    println!("{}", fig3::render(&fig3::run(97)));

    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let trace = trace_of(&net).trace;
    let mut g = BenchGroup::new("fig3");
    g.sample_size(30);
    g.bench_function("trace_generation_lenet", || trace_of(black_box(&net)));
    g.bench_function("trace_observation_lenet", || observe(black_box(&trace)));
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig3_memory_trace");
}
