//! Prints Figure 7 (quick parameters) and times the weight-ratio recovery.

use criterion::{criterion_group, criterion_main, Criterion};

use cnnre_bench::experiments::fig7;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::render(&fig7::run(&fig7::Fig7Config::quick())));

    // Kernel: recovery on a 2-filter CONV1-geometry layer.
    let tiny = fig7::Fig7Config { filters: 2, input_w: 39, prune_fraction: 0.45 };
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("recover_conv1_ratios_tiny", |b| b.iter(|| fig7::run(&tiny)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
