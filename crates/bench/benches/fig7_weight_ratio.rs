//! Prints Figure 7 (quick parameters) and times the weight-ratio recovery.

use cnnre_obs::bench::BenchGroup;

use cnnre_bench::experiments::fig7;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    println!("{}", fig7::render(&fig7::run(&fig7::Fig7Config::quick())));

    // Kernel: recovery on a 2-filter CONV1-geometry layer.
    let tiny = fig7::Fig7Config {
        filters: 2,
        input_w: 39,
        prune_fraction: 0.45,
    };
    let mut g = BenchGroup::new("fig7");
    g.sample_size(10);
    g.bench_function("recover_conv1_ratios_tiny", || fig7::run(&tiny));
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig7_weight_ratio");
}
