//! Times the AlexNet structure attack and prints Table 4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::{table4, trace_of};
use cnnre_nn::models::alexnet;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", table4::render(&table4::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let trace = trace_of(&alexnet(1, 1000, &mut rng)).trace;
    let cfg = NetworkSolverConfig::default();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("structure_attack_alexnet_full", |b| {
        b.iter(|| recover_structures(black_box(&trace), (227, 3), 1000, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
