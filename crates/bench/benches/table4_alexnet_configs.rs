//! Times the AlexNet structure attack and prints Table 4.

use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::{table4, trace_of};
use cnnre_nn::models::alexnet;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    println!("{}", table4::render(&table4::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let trace = trace_of(&alexnet(1, 1000, &mut rng)).trace;
    let cfg = NetworkSolverConfig::default();
    let mut g = BenchGroup::new("table4");
    g.sample_size(10);
    g.bench_function("structure_attack_alexnet_full", || {
        recover_structures(black_box(&trace), (227, 3), 1000, &cfg).unwrap()
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "table4_alexnet_configs");
}
