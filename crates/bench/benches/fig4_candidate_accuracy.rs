//! Prints Figure 4 (quick parameters) and times the short-training kernel
//! that ranks one candidate.

use std::hint::black_box;

use cnnre_bench::experiments::fig4;
use cnnre_nn::data::SyntheticSpec;
use cnnre_nn::models::{alexnet_from_specs, ConvSpec, ALEXNET_CONV_SPECS};
use cnnre_nn::train::Trainer;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::Shape3;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    // Benches always use reduced parameters so `cargo bench` stays fast;
    // the `fig4` bin runs the full 24-candidate ranking.
    println!(
        "{}",
        fig4::render(&fig4::run(&fig4::RankingConfig::quick()))
    );

    // Kernel: one epoch of short training on one depth-scaled candidate.
    let specs: Vec<ConvSpec> = ALEXNET_CONV_SPECS.iter().map(|s| s.scaled(64)).collect();
    let mut rng = SmallRng::seed_from_u64(0);
    let spec = SyntheticSpec::new(Shape3::new(3, 227, 227), 4)
        .samples_per_class(4)
        .noise(1.2);
    let data = spec.generate(&mut rng);
    let mut g = BenchGroup::new("fig4");
    g.sample_size(10);
    g.bench_function("short_train_one_candidate_epoch", || {
        let mut net_rng = SmallRng::seed_from_u64(7);
        let mut net = alexnet_from_specs(
            Shape3::new(3, 227, 227),
            black_box(&specs),
            &[16, 16, 4],
            &mut net_rng,
        )
        .expect("candidate builds");
        let mut train_rng = SmallRng::seed_from_u64(11);
        Trainer::new(0.003)
            .momentum(0.9)
            .batch_size(8)
            .train_epoch(&mut net, &data, &mut train_rng)
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig4_candidate_accuracy");
}
