//! Prints the zero-pruning traffic ablation and times pruned inference.

use std::hint::black_box;

use cnnre_accel::{AccelConfig, Accelerator};
use cnnre_bench::experiments::ablation;
use cnnre_nn::models::convnet;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};
use cnnre_tensor::Tensor3;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    println!("{}", ablation::render(&ablation::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let net = convnet(1, 10, &mut rng);
    let input = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0));
    let dense = Accelerator::new(AccelConfig::default());
    let pruned = Accelerator::new(AccelConfig::default().with_zero_pruning(true));
    let mut g = BenchGroup::new("ablation");
    g.sample_size(10);
    g.bench_function("convnet_inference_dense", || {
        dense.run(black_box(&net), black_box(&input)).unwrap()
    });
    g.bench_function("convnet_inference_pruned", || {
        pruned.run(black_box(&net), black_box(&input)).unwrap()
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "ablation_zero_pruning");
}
