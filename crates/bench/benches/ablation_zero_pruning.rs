//! Prints the zero-pruning traffic ablation and times pruned inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_accel::{AccelConfig, Accelerator};
use cnnre_bench::experiments::ablation;
use cnnre_nn::models::convnet;
use cnnre_tensor::Tensor3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    println!("{}", ablation::render(&ablation::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let net = convnet(1, 10, &mut rng);
    let input = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0));
    let dense = Accelerator::new(AccelConfig::default());
    let pruned = Accelerator::new(AccelConfig::default().with_zero_pruning(true));
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("convnet_inference_dense", |b| {
        b.iter(|| dense.run(black_box(&net), black_box(&input)).unwrap())
    });
    g.bench_function("convnet_inference_pruned", |b| {
        b.iter(|| pruned.run(black_box(&net), black_box(&input)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
