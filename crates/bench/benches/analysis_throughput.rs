//! Throughput of the adversary's offline analyses on a full-scale AlexNet
//! trace (~4.4M transactions): statistics, traffic profiling, and the
//! end-to-end structure attack. These are the costs *the attacker* pays,
//! so they bound how cheaply the paper's attack runs on captured data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::trace_of;
use cnnre_nn::models::alexnet;
use cnnre_trace::stats::{TraceStats, TrafficProfile};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = alexnet(1, 1000, &mut rng);
    let trace = trace_of(&net).trace;
    println!("alexnet trace: {} transactions", trace.len());

    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("trace_stats_alexnet", |b| {
        b.iter(|| TraceStats::compute(black_box(&trace), 16));
    });
    g.bench_function("traffic_profile_alexnet", |b| {
        b.iter(|| TrafficProfile::compute(black_box(&trace), 10_000));
    });
    g.bench_function("structure_attack_alexnet", |b| {
        b.iter(|| {
            recover_structures(black_box(&trace), (227, 3), 1000, &NetworkSolverConfig::default())
                .expect("attack succeeds")
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
