//! Throughput of the adversary's offline analyses on a full-scale AlexNet
//! trace (~4.4M transactions): statistics, traffic profiling, and the
//! end-to-end structure attack. These are the costs *the attacker* pays,
//! so they bound how cheaply the paper's attack runs on captured data.

use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::trace_of;
use cnnre_nn::models::alexnet;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::stats::{TraceStats, TrafficProfile};

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let mut rng = SmallRng::seed_from_u64(0);
    let net = alexnet(1, 1000, &mut rng);
    let trace = trace_of(&net).trace;
    println!("alexnet trace: {} transactions", trace.len());

    let mut g = BenchGroup::new("analysis");
    g.sample_size(10);
    g.bench_function("trace_stats_alexnet", || {
        TraceStats::compute(black_box(&trace), 16)
    });
    g.bench_function("traffic_profile_alexnet", || {
        TrafficProfile::compute(black_box(&trace), 10_000)
    });
    g.bench_function("structure_attack_alexnet", || {
        recover_structures(
            black_box(&trace),
            (227, 3),
            1000,
            &NetworkSolverConfig::default(),
        )
        .expect("attack succeeds")
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "analysis_throughput");
}
