//! Prints the ORAM defense sweep and times the obfuscation transform.

use std::hint::black_box;

use cnnre_bench::experiments::{defense, trace_of};
use cnnre_nn::models::lenet;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::defense::{obfuscate, OramConfig};

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let (baseline, rows) = defense::run();
    println!("{}", defense::render(baseline, &rows));

    let mut rng = SmallRng::seed_from_u64(0);
    let trace = trace_of(&lenet(1, 10, &mut rng)).trace;
    let cfg = OramConfig::default();
    let mut g = BenchGroup::new("defense");
    g.sample_size(20);
    let mut oram_rng = SmallRng::seed_from_u64(1);
    g.bench_function("oram_obfuscate_lenet_trace", || {
        obfuscate(black_box(&trace), cfg, &mut oram_rng)
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "defense_oblivious");
}
