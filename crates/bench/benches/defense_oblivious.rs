//! Prints the ORAM defense sweep and times the obfuscation transform.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_bench::experiments::{defense, trace_of};
use cnnre_nn::models::lenet;
use cnnre_trace::defense::{obfuscate, OramConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let (baseline, rows) = defense::run();
    println!("{}", defense::render(baseline, &rows));

    let mut rng = SmallRng::seed_from_u64(0);
    let trace = trace_of(&lenet(1, 10, &mut rng)).trace;
    let cfg = OramConfig::default();
    let mut g = c.benchmark_group("defense");
    g.sample_size(20);
    g.bench_function("oram_obfuscate_lenet_trace", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| obfuscate(black_box(&trace), cfg, &mut rng))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
