//! Prints Figure 5 (quick parameters) and times the SqueezeNet candidate
//! training kernel.

use std::hint::black_box;

use cnnre_bench::experiments::fig5;
use cnnre_nn::data::SyntheticSpec;
use cnnre_nn::models::{squeezenet_from_specs, SqueezeNetSpec};
use cnnre_nn::train::Trainer;
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::Shape3;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    // Benches always use reduced parameters so `cargo bench` stays fast;
    // the `fig5` bin runs the full modular-candidate ranking.
    println!(
        "{}",
        fig5::render(&fig5::run(&fig5::RankingConfig::quick()))
    );

    let spec = SqueezeNetSpec::v1_0(64, 4);
    let mut rng = SmallRng::seed_from_u64(0);
    let data_spec = SyntheticSpec::new(Shape3::new(3, 227, 227), 4)
        .samples_per_class(4)
        .noise(1.2);
    let data = data_spec.generate(&mut rng);
    let mut g = BenchGroup::new("fig5");
    g.sample_size(10);
    g.bench_function("short_train_squeezenet_candidate_epoch", || {
        let mut net_rng = SmallRng::seed_from_u64(7);
        let mut net =
            squeezenet_from_specs(black_box(&spec), &mut net_rng).expect("candidate builds");
        let mut train_rng = SmallRng::seed_from_u64(11);
        Trainer::new(0.003)
            .momentum(0.9)
            .batch_size(8)
            .train_epoch(&mut net, &data, &mut train_rng)
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig5_squeezenet_accuracy");
}
