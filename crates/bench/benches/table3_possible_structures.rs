//! Times the full structure attack per network and prints Table 3.

use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::{table3, trace_of};
use cnnre_nn::models::{convnet, lenet};
use cnnre_obs::bench::BenchGroup;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    println!("{}", table3::render(&table3::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let cfg = NetworkSolverConfig::default();
    let lenet_trace = trace_of(&lenet(1, 10, &mut rng)).trace;
    let convnet_trace = trace_of(&convnet(1, 10, &mut rng)).trace;
    let mut g = BenchGroup::new("table3");
    g.sample_size(20);
    g.bench_function("structure_attack_lenet", || {
        recover_structures(black_box(&lenet_trace), (32, 1), 10, &cfg).unwrap()
    });
    g.bench_function("structure_attack_convnet", || {
        recover_structures(black_box(&convnet_trace), (32, 3), 10, &cfg).unwrap()
    });
    g.finish();
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "table3_possible_structures");
}
