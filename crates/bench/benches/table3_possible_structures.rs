//! Times the full structure attack per network and prints Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_bench::experiments::{table3, trace_of};
use cnnre_nn::models::{convnet, lenet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    println!("{}", table3::render(&table3::run()));

    let mut rng = SmallRng::seed_from_u64(0);
    let cfg = NetworkSolverConfig::default();
    let lenet_trace = trace_of(&lenet(1, 10, &mut rng)).trace;
    let convnet_trace = trace_of(&convnet(1, 10, &mut rng)).trace;
    let mut g = c.benchmark_group("table3");
    g.sample_size(20);
    g.bench_function("structure_attack_lenet", |b| {
        b.iter(|| recover_structures(black_box(&lenet_trace), (32, 1), 10, &cfg).unwrap())
    });
    g.bench_function("structure_attack_convnet", |b| {
        b.iter(|| recover_structures(black_box(&convnet_trace), (32, 3), 10, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
