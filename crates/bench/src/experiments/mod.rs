//! One module per reproduced table/figure.

pub mod ablation;
pub mod ablation_prune_sweep;
pub mod defense;
pub mod defense_matrix;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod table3;
pub mod table4;

use cnnre_accel::{AccelConfig, Accelerator, Execution};
use cnnre_nn::Network;

/// Runs one trace-only inference with the default accelerator.
///
/// # Panics
///
/// Panics when the network cannot be lowered (all the study's networks
/// can).
#[must_use]
pub fn trace_of(net: &Network) -> Execution {
    Accelerator::new(AccelConfig::default())
        .run_trace_only(net)
        .expect("study networks lower onto the accelerator")
}

/// Maps `items` through `f` on all available cores, preserving order.
/// `f` must be deterministic per item (seeded RNGs), so the result is
/// identical to the sequential map.
pub fn parallel_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<U>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                **slot_refs[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod parallel_tests {
    use super::parallel_map;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(parallel_map::<u64, u64>(&[], |&x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }
}
