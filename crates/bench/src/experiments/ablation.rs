//! **Ablation (§4 motivation)** — dynamic zero pruning's traffic savings:
//! the optimization that creates the weight side channel. Recent designs
//! report ~40% fewer operations; we measure the DRAM transaction reduction
//! on real inference runs.

use cnnre_accel::{AccelConfig, Accelerator};
use cnnre_nn::models::{alexnet, convnet, lenet, squeezenet};
use cnnre_nn::Network;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};
use cnnre_tensor::Tensor3;

/// One network's traffic with and without pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Network name.
    pub network: &'static str,
    /// Dense (reads, writes) at 64-byte bursts.
    pub dense: (usize, usize),
    /// Pruned (reads, writes) at 64-byte bursts.
    pub pruned: (usize, usize),
    /// Word-granular write counts (dense, pruned): the intrinsic feature-map
    /// sparsity, unmasked by burst quantization.
    pub word_writes: (usize, usize),
}

impl Row {
    /// Total-traffic reduction fraction.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        let dense = (self.dense.0 + self.dense.1) as f64;
        let pruned = (self.pruned.0 + self.pruned.1) as f64;
        1.0 - pruned / dense
    }

    /// Write-traffic reduction fraction (the §4 leak).
    #[must_use]
    pub fn write_reduction(&self) -> f64 {
        1.0 - self.pruned.1 as f64 / self.dense.1 as f64
    }
}

fn measure(name: &'static str, net: &Network, rng: &mut SmallRng) -> Row {
    let input = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0));
    let dense = Accelerator::new(AccelConfig::default())
        .run(net, &input)
        .expect("dense run");
    let pruned = Accelerator::new(AccelConfig::default().with_zero_pruning(true))
        .run(net, &input)
        .expect("pruned run");
    assert_eq!(
        dense.output, pruned.output,
        "pruning is a storage format only"
    );
    let word = AccelConfig::default().with_block_bytes(4);
    let dense_w = Accelerator::new(word)
        .run(net, &input)
        .expect("dense word run");
    let pruned_w = Accelerator::new(word.with_zero_pruning(true))
        .run(net, &input)
        .expect("pruned word run");
    Row {
        network: name,
        dense: (dense.trace.read_count(), dense.trace.write_count()),
        pruned: (pruned.trace.read_count(), pruned.trace.write_count()),
        word_writes: (dense_w.trace.write_count(), pruned_w.trace.write_count()),
    }
}

/// Measures the pruning ablation across the model zoo (larger nets are
/// depth-scaled so the runs stay in seconds).
#[must_use]
pub fn run() -> Vec<Row> {
    let mut rng = SmallRng::seed_from_u64(5);
    let l = lenet(1, 10, &mut rng);
    let c = convnet(1, 10, &mut rng);
    let a = alexnet(8, 100, &mut rng);
    let s = squeezenet(8, 100, &mut rng);
    let mut rng = SmallRng::seed_from_u64(6);
    vec![
        measure("LeNet", &l, &mut rng),
        measure("ConvNet", &c, &mut rng),
        measure("AlexNet/8", &a, &mut rng),
        measure("SqueezeNet/8", &s, &mut rng),
    ]
}

/// Formats the ablation table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Ablation: DRAM traffic with dynamic zero pruning (the optimization that leaks)\n\
         network       dense R/W          pruned R/W         total cut  write cut  sparsity\n",
    );
    for r in rows {
        let sparsity = 1.0 - r.word_writes.1 as f64 / r.word_writes.0 as f64;
        out.push_str(&format!(
            "{:<13} {:>8}/{:<8} {:>8}/{:<8} {:>8.1}%  {:>8.1}%  {:>7.1}%\n",
            r.network,
            r.dense.0,
            r.dense.1,
            r.pruned.0,
            r.pruned.1,
            100.0 * r.reduction(),
            100.0 * r.write_reduction(),
            100.0 * sparsity
        ));
    }
    out.push_str(
        "(sparsity = element-level zero fraction of all written feature maps; burst\n\
         quantization at 64-byte transactions absorbs part of it — recent designs\n\
         report ~40% average savings, matching the sparsest networks here)\n",
    );
    out
}
