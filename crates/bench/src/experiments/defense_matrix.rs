//! **Defense matrix (§5 extension)** — every mitigation in
//! `cnnre_trace::defense` against the structure attack, side by side:
//! what it costs (traffic multiplier) and what it buys (candidate count,
//! or the attack failing outright). The asymmetry is the point: timing
//! noise costs nothing and buys nothing (the leak is carried by
//! *addresses*); reorder buffers disrupt the boundary detector on small
//! traces but offer no principled guarantee (the footprints are intact —
//! an analyzer that clusters before segmenting defeats them); only
//! address-space obfuscation (ORAM) removes the leak, at ~100x traffic.

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_nn::models::lenet;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::defense::{
    jitter_timing, obfuscate, pad_write_traffic, shuffle_within_window, OramConfig,
};
use cnnre_trace::stats::TraceStats;
use cnnre_trace::Trace;

use super::trace_of;

/// One mitigation's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Mitigation name.
    pub defense: &'static str,
    /// Transaction-count multiplier vs. the unprotected trace.
    pub traffic_factor: f64,
    /// Structure-attack outcome: recovered candidate count, or `None`
    /// when the attack fails.
    pub candidates: Option<usize>,
}

/// Runs the matrix on a LeNet trace.
#[must_use]
pub fn run() -> (usize, Vec<Row>) {
    let mut rng = SmallRng::seed_from_u64(17);
    let victim = lenet(1, 10, &mut rng);
    let exec = trace_of(&victim);
    let cfg = NetworkSolverConfig::default();
    let attack = |t: &Trace| {
        recover_structures(t, (32, 1), 10, &cfg)
            .ok()
            .map(|s| s.len())
    };
    let baseline = attack(&exec.trace).unwrap_or(0);

    let fmap_regions: Vec<(u64, u64)> = TraceStats::compute(&exec.trace, 16)
        .regions
        .iter()
        .map(|r| (r.start, r.len_bytes()))
        .collect();

    let protected: Vec<(&'static str, Trace)> = vec![
        (
            "timing jitter 15%",
            jitter_timing(&exec.trace, 0.15, &mut rng),
        ),
        (
            "reorder buffer (64)",
            shuffle_within_window(&exec.trace, 64, &mut rng),
        ),
        (
            "write padding",
            pad_write_traffic(&exec.trace, &fmap_regions).0,
        ),
        (
            "Path-ORAM (Z=4)",
            obfuscate(
                &exec.trace,
                OramConfig {
                    logical_blocks: 1 << 14,
                    bucket_blocks: 4,
                },
                &mut rng,
            )
            .0,
        ),
    ];

    #[allow(clippy::cast_precision_loss)]
    let rows = protected
        .into_iter()
        .map(|(defense, t)| Row {
            defense,
            traffic_factor: t.len() as f64 / exec.trace.len() as f64,
            candidates: attack(&t),
        })
        .collect();
    (baseline, rows)
}

/// Formats the matrix.
#[must_use]
pub fn render(baseline: usize, rows: &[Row]) -> String {
    let mut out = format!(
        "Defense matrix vs. the structure attack (unprotected: {baseline} candidates)\n\
         defense               traffic   attack outcome\n"
    );
    for r in rows {
        let outcome = r
            .candidates
            .map_or("FAILS (no consistent candidate)".to_string(), |n| {
                format!("{n} candidates")
            });
        out.push_str(&format!(
            "{:<21} {:>6.1}x   {}\n",
            r.defense, r.traffic_factor, outcome
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shows_the_address_leak_asymmetry() {
        let (baseline, rows) = run();
        assert!(baseline > 0);
        assert_eq!(rows.len(), 4);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.defense.starts_with(name))
                .expect(name)
        };

        // Timing-only noise: no traffic cost, no protection.
        let jitter = get("timing jitter");
        assert!((jitter.traffic_factor - 1.0).abs() < 1e-9);
        assert!(jitter.candidates.is_some());

        // Reorder buffer: free, and the attack still runs.
        let shuffle = get("reorder buffer");
        assert!((shuffle.traffic_factor - 1.0).abs() < 1e-9);

        // Write padding adds bounded traffic; the structure attack still
        // succeeds (it closes the *weight* leak, not this one).
        let pad = get("write padding");
        assert!(pad.traffic_factor >= 1.0 && pad.traffic_factor < 3.0);
        assert!(pad.candidates.is_some());

        // ORAM is the only mitigation that stops the attack — at a large
        // traffic cost.
        let oram = get("Path-ORAM");
        assert!(oram.traffic_factor > 10.0);
        assert_eq!(oram.candidates, None);
    }

    #[test]
    fn render_has_a_row_per_defense() {
        let (baseline, rows) = run();
        let text = render(baseline, &rows);
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("FAILS"));
    }
}
