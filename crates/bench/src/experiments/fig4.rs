//! **Figure 4** — top-1 validation accuracy of the recovered AlexNet
//! candidate structures after short training.
//!
//! The paper trains its 24 candidates on ImageNet; we train depth-scaled
//! candidates on a seeded synthetic task (DESIGN.md §4). The *shape* under
//! test: candidates differ measurably in achievable accuracy and the true
//! structure ranks near the top.

use cnnre_attacks::structure::{recover_structures, CandidateStructure, NetworkSolverConfig};
use cnnre_nn::data::SyntheticSpec;
use cnnre_nn::models::{alexnet, alexnet_from_specs, ConvSpec, ALEXNET_CONV_SPECS};
use cnnre_nn::train::{evaluate_top_k, Trainer};
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::Shape3;

use super::trace_of;

/// One trained candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Conv-geometry summary.
    pub label: String,
    /// Whether this is the true AlexNet geometry.
    pub is_original: bool,
    /// Top-1 validation accuracy after training.
    pub accuracy: f32,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Scores, sorted best-first.
    pub scores: Vec<CandidateScore>,
    /// Total candidates the attack produced (before capping).
    pub total_candidates: usize,
}

impl Fig4 {
    /// Best-minus-worst accuracy (the paper reports 12.3%).
    #[must_use]
    pub fn spread(&self) -> f32 {
        match (self.scores.first(), self.scores.last()) {
            (Some(a), Some(b)) => a.accuracy - b.accuracy,
            _ => 0.0,
        }
    }

    /// 1-based rank of the original structure (paper: 4th of 24).
    #[must_use]
    pub fn original_rank(&self) -> Option<usize> {
        self.scores
            .iter()
            .position(|s| s.is_original)
            .map(|p| p + 1)
    }
}

/// Training hyper-parameters for the candidate ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingConfig {
    /// Channel-depth divisor applied to every candidate.
    pub depth_div: usize,
    /// Synthetic classes.
    pub classes: usize,
    /// Training samples per class.
    pub samples_per_class: usize,
    /// Training epochs ("short training", §3.2).
    pub epochs: usize,
    /// Cap on the number of candidates trained.
    pub max_candidates: usize,
}

impl RankingConfig {
    /// Default parameters (minutes of CPU time).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            depth_div: 32,
            classes: 10,
            samples_per_class: 16,
            epochs: 3,
            max_candidates: 24,
        }
    }

    /// Smoke-test parameters.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            depth_div: 64,
            classes: 4,
            samples_per_class: 8,
            epochs: 1,
            max_candidates: 4,
        }
    }
}

fn signature(s: &CandidateStructure) -> String {
    s.conv_layers()
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(" | ")
}

fn is_original(s: &CandidateStructure) -> bool {
    let convs = s.conv_layers();
    convs.len() == ALEXNET_CONV_SPECS.len()
        && convs.iter().zip(&ALEXNET_CONV_SPECS).all(|(c, spec)| {
            c.f_conv == spec.f
                && c.s_conv == spec.s
                && c.d_ofm == spec.d_ofm
                && c.pool.map(|p| (p.f, p.s)) == spec.pool.map(|p| (p.f, p.s))
        })
}

/// Regenerates Figure 4: attack, instantiate candidates, train, rank.
///
/// # Panics
///
/// Panics when the attack or a candidate instantiation fails (a bug).
#[must_use]
pub fn run(cfg: &RankingConfig) -> Fig4 {
    let mut rng = SmallRng::seed_from_u64(0);
    let victim = alexnet(1, 1000, &mut rng);
    let mut structures = recover_structures(
        &trace_of(&victim).trace,
        (227, 3),
        1000,
        &NetworkSolverConfig::default(),
    )
    .expect("alexnet attack");
    let total_candidates = structures.len();
    // Deterministic cap: keep the original plus evenly spaced others.
    structures.sort_by_key(signature);
    let original_idx = structures.iter().position(is_original);
    let mut picked: Vec<CandidateStructure> = Vec::new();
    if let Some(i) = original_idx {
        picked.push(structures[i].clone());
    }
    let step = (structures.len() / cfg.max_candidates.max(1)).max(1);
    for (i, s) in structures.iter().enumerate() {
        if picked.len() >= cfg.max_candidates {
            break;
        }
        if i % step == 0 && Some(i) != original_idx {
            picked.push(s.clone());
        }
    }

    // Shared dataset for all candidates.
    let spec = SyntheticSpec::new(Shape3::new(3, 227, 227), cfg.classes)
        .samples_per_class(cfg.samples_per_class)
        .noise(1.2);
    let mut data_rng = SmallRng::seed_from_u64(99);
    let templates = spec.templates(&mut data_rng);
    let train = spec.generate_from_templates(&templates, &mut data_rng);
    let test = spec.generate_from_templates(&templates, &mut data_rng);

    // Each candidate trains with its own seeded RNGs, so training them on
    // worker threads is deterministic; results are written back by index.
    let train_one = |s: &CandidateStructure| {
        let conv_specs: Vec<ConvSpec> = s
            .conv_layers()
            .iter()
            .map(|c| c.to_conv_spec(cfg.depth_div))
            .collect();
        let fc_widths = [32usize, 32, cfg.classes];
        let mut net_rng = SmallRng::seed_from_u64(7);
        let mut net = alexnet_from_specs(
            Shape3::new(3, 227, 227),
            &conv_specs,
            &fc_widths,
            &mut net_rng,
        )
        .expect("candidate geometry is attack-validated");
        let trainer = Trainer::new(0.003).momentum(0.9).batch_size(10);
        let mut train_rng = SmallRng::seed_from_u64(11);
        let _ = trainer.train(&mut net, &train, cfg.epochs, &mut train_rng);
        CandidateScore {
            label: signature(s),
            is_original: is_original(s),
            accuracy: evaluate_top_k(&net, &test, 1),
        }
    };
    let mut scores: Vec<CandidateScore> = super::parallel_map(&picked, train_one);
    scores.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite"));
    if cnnre_obs::enabled() {
        let reg = cnnre_obs::global();
        reg.counter("fig4.candidates_total")
            .add(total_candidates as u64);
        reg.counter("fig4.candidates_trained")
            .add(scores.len() as u64);
        let series = reg.series("fig4.candidate_accuracy");
        for s in &scores {
            series.push(f64::from(s.accuracy));
        }
    }
    Fig4 {
        scores,
        total_candidates,
    }
}

/// Renders the ranking as an ASCII bar chart.
#[must_use]
pub fn render(fig: &Fig4) -> String {
    let mut out = format!(
        "Figure 4: top-1 accuracy of {} trained candidates (of {} recovered)\n\n",
        fig.scores.len(),
        fig.total_candidates
    );
    for (rank, s) in fig.scores.iter().enumerate() {
        let bar = "#".repeat((s.accuracy * 40.0).round() as usize);
        let tag = if s.is_original {
            " <= ORIGINAL AlexNet"
        } else {
            ""
        };
        out.push_str(&format!(
            "  #{:<2} {:>5.1}% |{bar}{tag}\n",
            rank + 1,
            100.0 * s.accuracy
        ));
    }
    out.push_str(&format!(
        "\nbest-to-worst spread: {:.1}% (paper: 12.3%); original rank: {:?} of {} (paper: 4 of 24)\n",
        100.0 * fig.spread(),
        fig.original_rank(),
        fig.scores.len()
    ));
    out
}
