//! **Figure 3** — the memory access pattern of the accelerator: address
//! versus time, with the RAW-detected layer boundaries.

use cnnre_nn::models::alexnet;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::observe::{observe, LayerKindHint};

use super::trace_of;

/// The regenerated figure: per-layer spans plus a down-sampled
/// (cycle, address, kind) series suitable for plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// `(name-ish, start_cycle, end_cycle, reads, writes)` per detected layer.
    pub layers: Vec<(usize, u64, u64, u64, u64)>,
    /// Down-sampled series `(cycle, address, is_write)`.
    pub series: Vec<(u64, u64, bool)>,
    /// Total transactions in the trace.
    pub transactions: usize,
}

/// Regenerates Figure 3 from a full-scale AlexNet trace, keeping every
/// `stride`-th transaction in the plotted series.
///
/// # Panics
///
/// Panics when `stride == 0`.
#[must_use]
pub fn run(stride: usize) -> Fig3 {
    assert!(stride > 0, "stride must be positive");
    let mut rng = SmallRng::seed_from_u64(0);
    let victim = alexnet(1, 1000, &mut rng);
    let exec = trace_of(&victim);
    let obs = observe(&exec.trace);
    let layers = obs
        .layers
        .iter()
        .filter(|l| l.kind != LayerKindHint::Prologue)
        .map(|l| {
            let seg = &exec.trace.events()[l.segment.first_event..l.segment.end_event];
            let reads = seg.iter().filter(|e| e.kind.is_read()).count() as u64;
            let writes = seg.len() as u64 - reads;
            (
                l.index,
                l.segment.start_cycle,
                l.segment.end_cycle,
                reads,
                writes,
            )
        })
        .collect();
    let series = exec
        .trace
        .events()
        .iter()
        .step_by(stride)
        .map(|e| (e.cycle, e.addr, e.kind.is_write()))
        .collect();
    Fig3 {
        layers,
        series,
        transactions: exec.trace.len(),
    }
}

/// Renders an ASCII address-vs-time plot plus the layer table.
#[must_use]
pub fn render(fig: &Fig3) -> String {
    let mut out = String::from("Figure 3: memory access pattern (address vs. time)\n\n");
    // ASCII plot: 100 time buckets x 30 address buckets.
    const W: usize = 100;
    const H: usize = 30;
    let max_cycle = fig.series.iter().map(|s| s.0).max().unwrap_or(1).max(1);
    let max_addr = fig.series.iter().map(|s| s.1).max().unwrap_or(1).max(1);
    let mut grid = vec![[b' '; W]; H];
    for &(cycle, addr, is_write) in &fig.series {
        let x = ((cycle as u128 * (W as u128 - 1)) / max_cycle as u128) as usize;
        let y = H - 1 - ((addr as u128 * (H as u128 - 1)) / max_addr as u128) as usize;
        let cell = &mut grid[y][x];
        *cell = match (*cell, is_write) {
            (b'W', false) | (b'R', true) | (b'*', _) => b'*',
            (_, true) => b'W',
            (_, false) => b'R',
        };
    }
    for row in &grid {
        out.push_str("  |");
        out.push_str(core::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "  +{} time ->\n  (R = read, W = write, * = both; {} transactions)\n\n",
        "-".repeat(W),
        fig.transactions
    ));
    out.push_str("layers detected from RAW dependencies:\n");
    out.push_str("  layer  start_cycle    end_cycle      reads   writes\n");
    for &(idx, start, end, reads, writes) in &fig.layers {
        out.push_str(&format!(
            "  {idx:>5}  {start:>11}  {end:>11}  {reads:>9}  {writes:>7}\n"
        ));
    }
    out
}
