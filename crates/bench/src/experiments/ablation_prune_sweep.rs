//! **Ablation — weight-attack robustness vs. compression level.**
//!
//! The paper attacks one compression point (Deep-Compression-style CONV1,
//! ~45% of weights pruned). This sweep varies the pruned fraction from
//! lightly to heavily compressed and measures coverage, precision, zero
//! identification, and query cost — showing the attack's machinery does
//! not depend on the paper's particular sparsity.

use super::fig7::{run as run_fig7, Fig7, Fig7Config};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Fraction of weights pruned to zero in the victim.
    pub prune_fraction: f64,
    /// The full Figure-7-style result at this point.
    pub result: Fig7,
}

/// Runs the sweep at the given scale (`filters`, `input_w` as in
/// [`Fig7Config`]).
#[must_use]
pub fn run(filters: usize, input_w: usize, fractions: &[f64]) -> Vec<SweepPoint> {
    fractions
        .iter()
        .map(|&prune_fraction| SweepPoint {
            prune_fraction,
            result: run_fig7(&Fig7Config {
                filters,
                input_w,
                prune_fraction,
            }),
        })
        .collect()
}

/// Formats the sweep as a table.
#[must_use]
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "Weight-attack robustness vs. compression level\n\
         pruned%   coverage  max |w/b| err  zeros id/actual  false0  queries\n",
    );
    for p in points {
        let r = &p.result;
        out.push_str(&format!(
            "{:>6.0}%   {:>7.2}%  {:>12.3e}  {:>7}/{:<7}  {:>6}  {:>8}\n",
            100.0 * p.prune_fraction,
            100.0 * r.coverage,
            r.max_error,
            r.zeros.0,
            r.zeros.1,
            r.false_zeros,
            r.queries
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_sound_at_every_compression_level() {
        let points = run(4, 39, &[0.0, 0.3, 0.6, 0.85]);
        assert_eq!(points.len(), 4);
        for p in &points {
            let r = &p.result;
            assert_eq!(
                r.false_zeros,
                0,
                "{}% pruned: false zero",
                100.0 * p.prune_fraction
            );
            assert!(
                r.max_error < 2f64.powi(-10),
                "{}% pruned: error {:.3e}",
                100.0 * p.prune_fraction,
                r.max_error
            );
            assert!(
                r.coverage > 0.9,
                "{}% pruned: coverage {:.3}",
                100.0 * p.prune_fraction,
                r.coverage
            );
        }
        // Heavier pruning -> at least as many zeros identified.
        for w in points.windows(2) {
            assert!(w[1].result.zeros.1 >= w[0].result.zeros.1);
        }
    }

    #[test]
    fn render_has_one_row_per_point() {
        let points = run(2, 39, &[0.2, 0.5]);
        let text = render(&points);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("20%"));
        assert!(text.contains("50%"));
    }
}
