//! **Figure 7** — the recovered weight/bias ratios of the CONV1 layer of a
//! compressed AlexNet model: every weight expressed as `w/b`, zero weights
//! identified, maximum error below `2^-10` (§4.2).

use cnnre_attacks::weights::{
    recover_ratios_parallel, FunctionalOracle, LayerGeometry, MergedOrder, RatioRecovery,
    RecoveryConfig,
};
use cnnre_nn::layer::{Conv2d, PoolKind};
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};
use cnnre_tensor::{init, Shape3, Shape4};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Config {
    /// Number of CONV1 filters attacked (96 in the paper).
    pub filters: usize,
    /// Input width (227 for AlexNet; smaller inputs exercise the same
    /// geometry class faster).
    pub input_w: usize,
    /// Fraction of weights pruned to zero in the "compressed" model.
    pub prune_fraction: f64,
}

impl Fig7Config {
    /// Full-scale parameters (minutes of CPU).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            filters: 96,
            input_w: 227,
            prune_fraction: 0.45,
        }
    }

    /// Smoke-test parameters.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            filters: 8,
            input_w: 51,
            prune_fraction: 0.45,
        }
    }
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The raw recovery.
    pub recovery: RatioRecovery,
    /// Maximum |w/b| error over recovered weights.
    pub max_error: f64,
    /// Fraction of weights recovered (ratio or identified zero).
    pub coverage: f64,
    /// `(identified, actual)` zero-weight counts.
    pub zeros: (usize, usize),
    /// Any weight wrongly reported as zero?
    pub false_zeros: usize,
    /// Victim inference queries used.
    pub queries: u64,
    /// Weight count.
    pub weights_total: usize,
    /// Recovered `w/b` of filter 0 (one Figure-7 series).
    pub filter0_ratios: Vec<Option<f64>>,
}

/// Runs the CONV1 weight-extraction experiment.
///
/// # Panics
///
/// Panics when the configuration is degenerate.
#[must_use]
pub fn run(cfg: &Fig7Config) -> Fig7 {
    let geom = LayerGeometry {
        input: Shape3::new(3, cfg.input_w, cfg.input_w),
        d_ofm: cfg.filters,
        f: 11,
        s: 4,
        p: 0,
        pool: Some((PoolKind::Max, 3, 2, 0)),
        order: MergedOrder::ActThenPool,
        threshold: 0.0,
    };
    let mut rng = SmallRng::seed_from_u64(2018);
    let shape = Shape4::new(cfg.filters, 3, 11, 11);
    let weights = init::compressed_conv(&mut rng, shape, cfg.prune_fraction, 8);
    let bias: Vec<f32> = (0..cfg.filters)
        .map(|_| -rng.gen_range(0.05..0.5f32))
        .collect();
    let victim = Conv2d::from_parts(weights, bias, geom.s, geom.p).expect("victim conv1");

    // Parallel per-filter engine; worker count from `RecoveryConfig::default`
    // (the `--threads` flag / `CNNRE_THREADS`). Output is byte-identical at
    // any thread count (DESIGN.md §13).
    let oracle = FunctionalOracle::new(victim.clone(), geom);
    let recovery = recover_ratios_parallel(oracle, &RecoveryConfig::default());

    let mut zeros_true = 0usize;
    let mut zeros_found = 0usize;
    let mut false_zeros = 0usize;
    for (d, f) in recovery.filters.iter().enumerate() {
        for c in 0..3 {
            for i in 0..11 {
                for j in 0..11 {
                    let truth = victim.weights()[(d, c, i, j)];
                    // lint:allow(float-eq): pruned weights are stored as
                    // bit-exact 0.0; the figure counts those, not near-zeros.
                    if truth == 0.0 {
                        zeros_true += 1;
                    }
                    if f.ratio(c, i, j) == Some(0.0) {
                        // lint:allow(float-eq): same exact-zero bookkeeping.
                        if truth == 0.0 {
                            zeros_found += 1;
                        } else {
                            false_zeros += 1;
                        }
                    }
                }
            }
        }
    }
    Fig7 {
        max_error: recovery.max_ratio_error(victim.weights(), victim.bias()),
        coverage: recovery.coverage(),
        zeros: (zeros_found, zeros_true),
        false_zeros,
        queries: recovery.queries,
        weights_total: cfg.filters * 3 * 11 * 11,
        filter0_ratios: recovery.filters[0].as_slice().to_vec(),
        recovery,
    }
}

/// Renders the summary plus a scatter of filter 0's recovered ratios.
#[must_use]
pub fn render(fig: &Fig7) -> String {
    let mut out = String::from("Figure 7: weight/bias ratios of compressed-AlexNet CONV1\n\n");
    out.push_str(&format!(
        "  weights attacked:    {}\n  recovered:           {:.2}%\n  max |w/b| error:     {:.3e}  (paper: < 2^-10 = {:.3e})\n  zero weights found:  {} of {} (false zeros: {})\n  victim queries:      {}\n\n",
        fig.weights_total,
        100.0 * fig.coverage,
        fig.max_error,
        2f64.powi(-10),
        fig.zeros.0,
        fig.zeros.1,
        fig.false_zeros,
        fig.queries
    ));
    out.push_str(
        "filter 0 recovered w/b over weight index (× = identified zero, ? = unrecovered):\n",
    );
    let ratios = &fig.filter0_ratios;
    let max_abs = ratios
        .iter()
        .flatten()
        .fold(0.0f64, |m, &r| m.max(r.abs()))
        .max(1e-9);
    const H: usize = 15;
    for row in 0..H {
        let level = max_abs * (1.0 - 2.0 * row as f64 / (H - 1) as f64);
        let mut line = format!("  {level:>7.3} |");
        for r in ratios.iter().take(120) {
            let ch = match r {
                // lint:allow(float-eq): recovered exact-zero sentinel.
                Some(v) if *v == 0.0 => {
                    if row == H / 2 {
                        '×'
                    } else {
                        ' '
                    }
                }
                Some(v) => {
                    let y = ((max_abs - v) / (2.0 * max_abs) * (H - 1) as f64).round() as usize;
                    if y == row {
                        '*'
                    } else {
                        ' '
                    }
                }
                None => {
                    if row == H / 2 {
                        '?'
                    } else {
                        ' '
                    }
                }
            };
            line.push(ch);
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("          +-- weight index (c,i,j raster) -->\n");
    out
}
