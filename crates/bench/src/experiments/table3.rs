//! **Table 3** — number of possible structures per network.
//!
//! Paper: LeNet 9, ConvNet 6, AlexNet 24, SqueezeNet 9 (with the
//! modularity assumption). Our exhaustive solver finds a slightly larger
//! superset for each network (EXPERIMENTS.md discusses the alias families
//! the paper's enumeration misses).

use cnnre_attacks::structure::{
    filter_modular, filter_modular_pools, recover_structures, NetworkSolverConfig,
};
use cnnre_nn::models::{alexnet, convnet, lenet, squeezenet};
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

use super::trace_of;

/// One Table-3 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Network name.
    pub network: &'static str,
    /// CONV/FC layer count (the paper's "# of layers").
    pub layers: usize,
    /// Structures our solver recovers.
    pub possible: usize,
    /// After the modularity assumption (SqueezeNet only).
    pub possible_modular: Option<usize>,
    /// The count the paper reports.
    pub paper: usize,
}

/// Regenerates Table 3.
///
/// # Panics
///
/// Panics when an attack fails on one of the study networks (a bug).
#[must_use]
pub fn run() -> Vec<Row> {
    let cfg = NetworkSolverConfig::default();
    let mut rng = SmallRng::seed_from_u64(0);
    let mut rows = Vec::new();

    let lenet = lenet(1, 10, &mut rng);
    let s = recover_structures(&trace_of(&lenet).trace, (32, 1), 10, &cfg).expect("lenet");
    rows.push(Row {
        network: "LeNet",
        layers: 4,
        possible: s.len(),
        possible_modular: None,
        paper: 9,
    });

    let convnet = convnet(1, 10, &mut rng);
    let s = recover_structures(&trace_of(&convnet).trace, (32, 3), 10, &cfg).expect("convnet");
    rows.push(Row {
        network: "ConvNet",
        layers: 4,
        possible: s.len(),
        possible_modular: None,
        paper: 6,
    });

    let alexnet = alexnet(1, 1000, &mut rng);
    let s = recover_structures(&trace_of(&alexnet).trace, (227, 3), 1000, &cfg).expect("alexnet");
    rows.push(Row {
        network: "AlexNet",
        layers: 8,
        possible: s.len(),
        possible_modular: None,
        paper: 24,
    });

    let squeezenet = squeezenet(1, 1000, &mut rng);
    let s =
        recover_structures(&trace_of(&squeezenet).trace, (227, 3), 1000, &cfg).expect("squeezenet");
    let raw = s.len();
    let conv_groups: Vec<Vec<usize>> = (0..3)
        .map(|role| (0..8).map(|m| 1 + 3 * m + role).collect())
        .collect();
    let pool_groups = vec![vec![8, 9, 20, 21]];
    let modular = filter_modular_pools(filter_modular(s, &conv_groups), &pool_groups);
    rows.push(Row {
        network: "SqueezeNet",
        layers: 18,
        possible: raw,
        possible_modular: Some(modular.len()),
        paper: 9,
    });
    rows
}

/// The search-space reduction the attack achieves per network — the
/// paper's headline framing of Table 3 ("reduces the search space by many
/// orders of magnitude"). Conv/FC layer counts are the real topologies
/// (SqueezeNet has 26 convolutions: conv1 + 8 fire modules of 3 + conv10).
#[must_use]
pub fn reduction(rows: &[Row]) -> Vec<cnnre_attacks::structure::ReductionRow> {
    use cnnre_attacks::structure::{reduction_report, SearchSpaceBounds};
    let split = |network: &str| match network {
        "LeNet" => (2u32, 2u32),
        "ConvNet" => (3, 1),
        "AlexNet" => (5, 3),
        "SqueezeNet" => (26, 0),
        other => unreachable!("unknown Table-3 network {other}"),
    };
    let networks: Vec<(&str, u32, u32, usize)> = rows
        .iter()
        .map(|r| {
            let (c, f) = split(r.network);
            (r.network, c, f, r.possible_modular.unwrap_or(r.possible))
        })
        .collect();
    reduction_report(&SearchSpaceBounds::default(), &networks)
}

/// Formats the reduction report.
#[must_use]
pub fn render_reduction(rows: &[cnnre_attacks::structure::ReductionRow]) -> String {
    let mut out = String::from(
        "Search-space reduction (prior: default architectural bounds)\n\
         network     prior      survivors  reduction\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>9}  {:>9}  10^{:.1}\n",
            r.network,
            r.prior.to_scientific(),
            r.survivors,
            r.reduction
        ));
    }
    out
}

/// Formats the rows as the paper's table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table 3: possible structures per network\n\
         network     #layers  ours  ours(modular)  paper\n",
    );
    for r in rows {
        let modular = r
            .possible_modular
            .map_or("-".to_string(), |m| m.to_string());
        out.push_str(&format!(
            "{:<11} {:>7}  {:>4}  {:>13}  {:>5}\n",
            r.network, r.layers, r.possible, modular, r.paper
        ));
    }
    out
}
