//! **Defense (§5)** — ORAM-style obfuscation stops the structure attack at
//! a measured traffic overhead.

use cnnre_attacks::structure::{recover_structures, NetworkSolverConfig};
use cnnre_nn::models::lenet;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_trace::defense::{obfuscate, OramConfig};

use super::trace_of;

/// One defense configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Path-ORAM bucket size Z.
    pub bucket_blocks: u64,
    /// Tree depth.
    pub depth: u32,
    /// Measured traffic multiplier.
    pub overhead: f64,
    /// Structures the attack recovers (None = attack fails).
    pub attack_result: Option<usize>,
}

/// Runs the defense sweep on a LeNet trace.
#[must_use]
pub fn run() -> (usize, Vec<Row>) {
    let mut rng = SmallRng::seed_from_u64(3);
    let victim = lenet(1, 10, &mut rng);
    let exec = trace_of(&victim);
    let cfg = NetworkSolverConfig::default();
    let baseline = recover_structures(&exec.trace, (32, 1), 10, &cfg)
        .map(|s| s.len())
        .unwrap_or(0);
    let rows = [1u64, 2, 4]
        .iter()
        .map(|&z| {
            let oram = OramConfig {
                logical_blocks: 1 << 14,
                bucket_blocks: z,
            };
            let (protected, stats) = obfuscate(&exec.trace, oram, &mut rng);
            let attack_result = recover_structures(&protected, (32, 1), 10, &cfg)
                .ok()
                .map(|s| s.len());
            Row {
                bucket_blocks: z,
                depth: oram.tree_depth(),
                overhead: stats.overhead(),
                attack_result,
            }
        })
        .collect();
    (baseline, rows)
}

/// Formats the sweep.
#[must_use]
pub fn render(baseline: usize, rows: &[Row]) -> String {
    let mut out = format!(
        "Defense: Path-ORAM obfuscation vs. the structure attack\n\
         unprotected: attack recovers {baseline} candidate structures\n\n\
         Z  depth  overhead  attack outcome\n"
    );
    for r in rows {
        let outcome = match r.attack_result {
            Some(n) => format!("recovers {n} (defense too weak)"),
            None => "FAILS (no consistent structure)".to_string(),
        };
        out.push_str(&format!(
            "{:<2} {:>5}  {:>7.0}x  {}\n",
            r.bucket_blocks, r.depth, r.overhead, outcome
        ));
    }
    out.push_str("\n\"ORAM can be used to prevent attacks proposed in this paper ... likely to\nresult in significant overhead\" — §5\n");
    out
}
