//! **Figure 5** — top-5 validation accuracy of the SqueezeNet candidate
//! structures after three training epochs.
//!
//! Under the modularity assumption the fire modules and CONV10 collapse to
//! one configuration, so the surviving candidates differ in the stem
//! (CONV1) and the pooling design — exactly what this experiment trains and
//! ranks (depth-scaled, synthetic task; DESIGN.md §4).

use cnnre_attacks::structure::{
    filter_modular, filter_modular_pools, recover_structures, CandidateStructure,
    NetworkSolverConfig,
};
use cnnre_nn::data::SyntheticSpec;
use cnnre_nn::models::{squeezenet, squeezenet_from_specs, ConvSpec, PoolSpec, SqueezeNetSpec};
use cnnre_nn::train::{evaluate_top_k, Trainer};
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::Shape3;

use super::trace_of;

/// One trained candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Stem (CONV1) configuration summary.
    pub label: String,
    /// Whether this is the true stem (7×7/s2 + 3×3/s2 pooling).
    pub is_original: bool,
    /// Top-5 validation accuracy after short training.
    pub accuracy: f32,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Scores, best-first.
    pub scores: Vec<CandidateScore>,
    /// Raw structure count before the modularity assumption.
    pub raw_candidates: usize,
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingConfig {
    /// Channel-depth divisor.
    pub depth_div: usize,
    /// Synthetic classes (top-5 needs comfortably more than 5).
    pub classes: usize,
    /// Training samples per class.
    pub samples_per_class: usize,
    /// Epochs — the paper uses three ("short training").
    pub epochs: usize,
}

impl RankingConfig {
    /// Default parameters.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            depth_div: 32,
            classes: 12,
            samples_per_class: 16,
            epochs: 3,
        }
    }

    /// Smoke-test parameters.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            depth_div: 64,
            classes: 8,
            samples_per_class: 4,
            epochs: 1,
        }
    }
}

/// Regenerates Figure 5.
///
/// # Panics
///
/// Panics when the attack fails or a candidate cannot be instantiated.
#[must_use]
pub fn run(cfg: &RankingConfig) -> Fig5 {
    let mut rng = SmallRng::seed_from_u64(0);
    let victim = squeezenet(1, 1000, &mut rng);
    let structures = recover_structures(
        &trace_of(&victim).trace,
        (227, 3),
        1000,
        &NetworkSolverConfig::default(),
    )
    .expect("squeezenet attack");
    let raw_candidates = structures.len();
    let conv_groups: Vec<Vec<usize>> = (0..3)
        .map(|role| (0..8).map(|m| 1 + 3 * m + role).collect())
        .collect();
    let pool_groups = vec![vec![8, 9, 20, 21]];
    let modular = filter_modular_pools(filter_modular(structures, &conv_groups), &pool_groups);

    // Shared dataset.
    let spec = SyntheticSpec::new(Shape3::new(3, 227, 227), cfg.classes)
        .samples_per_class(cfg.samples_per_class)
        .noise(1.2);
    let mut data_rng = SmallRng::seed_from_u64(99);
    let templates = spec.templates(&mut data_rng);
    let train = spec.generate_from_templates(&templates, &mut data_rng);
    let test = spec.generate_from_templates(&templates, &mut data_rng);

    let mut scores: Vec<CandidateScore> = super::parallel_map(&modular, |s| {
        let mut net_rng = SmallRng::seed_from_u64(7);
        let net_spec = spec_for_candidate(s, cfg.depth_div, cfg.classes);
        let mut net =
            squeezenet_from_specs(&net_spec, &mut net_rng).expect("candidate instantiates");
        let trainer = Trainer::new(0.003).momentum(0.9).batch_size(12);
        let mut train_rng = SmallRng::seed_from_u64(11);
        let _ = trainer.train(&mut net, &train, cfg.epochs, &mut train_rng);
        let stem = s.conv_layers()[0];
        let pool_of = |idx: usize| {
            s.conv_layers()[idx]
                .pool
                .map_or("-".to_string(), |p| format!("{}/{}", p.f, p.s))
        };
        CandidateScore {
            label: format!("{stem}; downsample pools {} & {}", pool_of(8), pool_of(20)),
            is_original: stem.f_conv == 7
                && stem.s_conv == 2
                && stem.pool.map(|p| (p.f, p.s)) == Some((3, 2)),
            accuracy: evaluate_top_k(&net, &test, 5),
        }
    });
    scores.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite"));
    if cnnre_obs::enabled() {
        let reg = cnnre_obs::global();
        reg.counter("fig5.candidates_total")
            .add(raw_candidates as u64);
        reg.counter("fig5.candidates_trained")
            .add(scores.len() as u64);
        let series = reg.series("fig5.candidate_accuracy");
        for s in &scores {
            series.push(f64::from(s.accuracy));
        }
    }
    Fig5 {
        scores,
        raw_candidates,
    }
}

/// Builds a trainable (depth-scaled) SqueezeNet from a recovered candidate:
/// the stem and down-sampling pools come from the candidate, the fire
/// geometry is the modularity-pinned canonical one.
fn spec_for_candidate(s: &CandidateStructure, depth_div: usize, classes: usize) -> SqueezeNetSpec {
    let mut spec = SqueezeNetSpec::v1_0(depth_div, classes);
    let convs = s.conv_layers();
    let stem = convs[0];
    spec.conv1 = ConvSpec::new(spec.conv1.d_ofm, stem.f_conv, stem.s_conv, stem.p_conv);
    if let Some(p) = stem.pool {
        spec.conv1 = spec.conv1.with_pool(PoolSpec {
            kind: cnnre_nn::layer::PoolKind::Max,
            f: p.f,
            s: p.s,
            p: p.p,
        });
    }
    // Down-sampling pools after fire4/fire8 (conv layers 8/9 and 20/21 are
    // the pooled expand pairs).
    if let Some(p) = convs[8].pool {
        let pool = PoolSpec {
            kind: cnnre_nn::layer::PoolKind::Max,
            f: p.f,
            s: p.s,
            p: p.p,
        };
        spec.fires[2].pool_after = Some(pool);
    }
    if let Some(p) = convs[20].pool {
        let pool = PoolSpec {
            kind: cnnre_nn::layer::PoolKind::Max,
            f: p.f,
            s: p.s,
            p: p.p,
        };
        spec.fires[6].pool_after = Some(pool);
    }
    spec
}

/// Renders the ranking.
#[must_use]
pub fn render(fig: &Fig5) -> String {
    let mut out = format!(
        "Figure 5: top-5 accuracy of {} modular candidates after short training\n\
         (raw structure space before the modularity assumption: {}; paper: 329 -> 9)\n\n",
        fig.scores.len(),
        fig.raw_candidates
    );
    for (rank, s) in fig.scores.iter().enumerate() {
        let bar = "#".repeat((s.accuracy * 40.0).round() as usize);
        let tag = if s.is_original {
            " <= ORIGINAL SqueezeNet stem"
        } else {
            ""
        };
        out.push_str(&format!(
            "  #{:<2} {:>5.1}% |{bar}  [{}]{tag}\n",
            rank + 1,
            100.0 * s.accuracy,
            s.label
        ));
    }
    out
}
