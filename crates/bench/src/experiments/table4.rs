//! **Table 4** — the candidate configurations of each AlexNet CONV layer.

use std::collections::BTreeSet;

use cnnre_attacks::structure::{recover_structures, LayerParams, NetworkSolverConfig};
use cnnre_nn::models::alexnet;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

use super::trace_of;

/// Per-layer candidate sets plus the total structure count.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Candidate configurations per CONV layer, in layer order.
    pub layers: Vec<Vec<LayerParams>>,
    /// Total consistent structures.
    pub structures: usize,
    /// Which paper rows (by their Table-4 labels) were found.
    pub paper_rows_found: Vec<(&'static str, bool)>,
}

/// Regenerates Table 4 from one full-scale AlexNet trace.
///
/// # Panics
///
/// Panics when the attack fails (a bug).
#[must_use]
pub fn run() -> Table4 {
    let mut rng = SmallRng::seed_from_u64(0);
    let victim = alexnet(1, 1000, &mut rng);
    let structures = recover_structures(
        &trace_of(&victim).trace,
        (227, 3),
        1000,
        &NetworkSolverConfig::default(),
    )
    .expect("alexnet attack");
    let n_layers = structures[0].conv_layers().len();
    let mut layers = Vec::with_capacity(n_layers);
    for li in 0..n_layers {
        let set: BTreeSet<LayerParams> = structures.iter().map(|s| *s.conv_layers()[li]).collect();
        layers.push(set.into_iter().collect::<Vec<_>>());
    }
    // The paper's 13 rows, reduced to the side-channel-distinguishable
    // signature (pre-pool width + filter/stride + pooling + interface).
    type PaperSignature = (usize, usize, usize, usize, Option<(usize, usize)>);
    let paper_rows: [(&str, usize, PaperSignature); 13] = [
        ("CONV1_1", 0, (27, 96, 11, 4, Some((3, 2)))),
        ("CONV1_2", 0, (27, 96, 11, 4, Some((4, 2)))),
        ("CONV2_1", 1, (13, 256, 5, 1, Some((3, 2)))),
        ("CONV2_2", 1, (26, 64, 10, 1, None)),
        ("CONV3_1", 2, (13, 384, 3, 1, None)),
        ("CONV3_2", 2, (13, 384, 6, 2, None)),
        ("CONV4", 3, (13, 384, 3, 1, None)),
        ("CONV5_1", 4, (6, 256, 3, 1, Some((3, 2)))),
        ("CONV5_2", 4, (12, 64, 6, 1, None)),
        ("CONV5_3", 4, (3, 1024, 3, 2, Some((2, 2)))),
        ("CONV5_4", 4, (3, 1024, 3, 2, Some((4, 1)))),
        ("CONV5_5", 4, (3, 1024, 3, 2, Some((3, 2)))),
        ("CONV5_6", 4, (4, 576, 2, 1, Some((3, 3)))),
    ];
    let paper_rows_found = paper_rows
        .iter()
        .map(|&(name, layer, (w_ofm, d_ofm, f, s, pool))| {
            let found = layers[layer].iter().any(|c| {
                c.w_ofm == w_ofm
                    && c.d_ofm == d_ofm
                    && c.f_conv == f
                    && c.s_conv == s
                    && c.pool.map(|p| (p.f, p.s)) == pool
            });
            (name, found)
        })
        .collect();
    Table4 {
        layers,
        structures: structures.len(),
        paper_rows_found,
    }
}

/// Formats the result as the paper's table.
#[must_use]
pub fn render(t: &Table4) -> String {
    let mut out = String::from("Table 4: possible AlexNet layer configurations\n");
    for (li, cands) in t.layers.iter().enumerate() {
        out.push_str(&format!("CONV{} — {} candidates:\n", li + 1, cands.len()));
        for c in cands {
            out.push_str(&format!("    {c}\n"));
        }
    }
    out.push_str(&format!(
        "\ntotal consistent structures: {} (paper: 24)\n",
        t.structures
    ));
    out.push_str("paper's 13 rows recovered:\n");
    for (name, found) in &t.paper_rows_found {
        out.push_str(&format!(
            "    {name:<8} {}\n",
            if *found { "yes" } else { "MISSING" }
        ));
    }
    out
}
