//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see the workspace DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each experiment has
//!
//! * a library entry point under [`experiments`] returning a structured
//!   result,
//! * a binary (`cargo run -p cnnre-bench --release --bin <name>`) that
//!   prints the regenerated table/figure, and
//! * a Criterion bench (`cargo bench -p cnnre-bench --bench <name>`) that
//!   times the attack kernel and prints the table once.
//!
//! Set `CNNRE_QUICK=1` to shrink the training-based experiments (figures 4
//! and 5) for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

/// Whether quick (smoke-test) parameters were requested via `CNNRE_QUICK`.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("CNNRE_QUICK").is_ok_and(|v| v != "0")
}
