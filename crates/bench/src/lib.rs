//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see the workspace DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each experiment has
//!
//! * a library entry point under [`experiments`] returning a structured
//!   result,
//! * a binary (`cargo run -p cnnre-bench --release --bin <name>`) that
//!   prints the regenerated table/figure, and
//! * a wall-clock bench (`cargo bench -p cnnre-bench --bench <name>`) that
//!   times the attack kernel and prints the table once.
//!
//! Set `CNNRE_QUICK=1` to shrink the training-based experiments (figures 4
//! and 5) for smoke runs. Every binary accepts `--out FILE` to enable the
//! `cnnre-obs` instrumentation and write a flat `BENCH_<experiment>.json`
//! metric snapshot on exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;

/// Whether quick (smoke-test) parameters were requested via `CNNRE_QUICK`.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("CNNRE_QUICK").is_ok_and(|v| v != "0")
}

/// Parses the `--threads N` flag shared by every experiment binary and
/// installs the worker count as the process-wide default
/// ([`cnnre_attacks::exec::set_default_threads`]), so every
/// thread-aware config built afterwards (`SolverConfig::default`,
/// `RecoveryConfig::default`) picks it up. Call at the top of `main`,
/// before the experiment constructs any config. Without the flag the
/// `CNNRE_THREADS` environment variable applies, else 1 (sequential).
///
/// Candidate output, counters, and golden artifacts are byte-identical at
/// any thread count (DESIGN.md §13) — only wall clock changes.
///
/// Exits with usage code 2 when `--threads` is given without a positive
/// integer.
pub fn parse_threads_flag() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return;
    };
    let threads = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok());
    let Some(threads) = threads.filter(|&n| n >= 1) else {
        eprintln!("--threads needs a positive integer worker count");
        std::process::exit(2);
    };
    cnnre_attacks::exec::set_default_threads(threads);
}

/// Parses the `--out FILE` flag shared by every experiment binary and, when
/// present, enables the global instrumentation so the experiment populates
/// the registry. Call at the top of `main`, before running the experiment;
/// pass the result to [`write_out`] afterwards.
///
/// Exits with usage code 2 when `--out` is given without a path.
#[must_use]
pub fn parse_out_flag() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pos = args.iter().position(|a| a == "--out")?;
    let Some(path) = args.get(pos + 1) else {
        eprintln!("--out needs a file path");
        std::process::exit(2);
    };
    cnnre_obs::set_enabled(true);
    Some(std::path::PathBuf::from(path))
}

/// Writes the accumulated metrics as a flat `BENCH_<experiment>.json`
/// snapshot when [`parse_out_flag`] returned a path; no-op otherwise.
///
/// Exits with code 1 when the file cannot be written.
pub fn write_out(path: Option<std::path::PathBuf>, experiment: &str) {
    let Some(path) = path else { return };
    let snapshot = cnnre_obs::global().snapshot();
    match snapshot.write_bench_json(&path, experiment) {
        Ok(()) => eprintln!("metrics written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `--profile-out FILE` / `--profile-clock wall|cycles|both` flag pair
/// shared by every experiment binary. When `--profile-out` is present this
/// enables both the instrumentation and the timeline recorder; pass the
/// result to [`write_profile`] after the experiment.
///
/// Exits with usage code 2 on a missing path or an unknown clock domain.
#[must_use]
pub fn parse_profile_flags() -> Option<(std::path::PathBuf, cnnre_obs::profile::ClockDomain)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clock = match args.iter().position(|a| a == "--profile-clock") {
        Some(pos) => {
            let Some(v) = args.get(pos + 1) else {
                eprintln!("--profile-clock needs a value (wall|cycles|both)");
                std::process::exit(2);
            };
            match cnnre_obs::profile::ClockDomain::parse(v) {
                Some(c) => c,
                None => {
                    eprintln!("unknown profile clock '{v}' (wall|cycles|both)");
                    std::process::exit(2);
                }
            }
        }
        None => cnnre_obs::profile::ClockDomain::Both,
    };
    let pos = args.iter().position(|a| a == "--profile-out")?;
    let Some(path) = args.get(pos + 1) else {
        eprintln!("--profile-out needs a file path");
        std::process::exit(2);
    };
    cnnre_obs::set_enabled(true);
    cnnre_obs::profile::set_enabled(true);
    Some((std::path::PathBuf::from(path), clock))
}

/// The `--events-out FILE` / `--events-tcp ADDR` flag pair shared by every
/// experiment binary: enables the live attack-event stream, recording it
/// for a `.evt` file and/or streaming it to a listening `cnnre-viz`
/// session. Pass the returned path to [`write_events`] after the
/// experiment.
///
/// Exits with usage code 2 on a missing flag value.
#[must_use]
pub fn parse_event_flags() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = match args.iter().position(|a| a == "--events-out") {
        Some(pos) => {
            let Some(path) = args.get(pos + 1) else {
                eprintln!("--events-out needs a file path");
                std::process::exit(2);
            };
            Some(std::path::PathBuf::from(path))
        }
        None => None,
    };
    let tcp = match args.iter().position(|a| a == "--events-tcp") {
        Some(pos) => {
            let Some(addr) = args.get(pos + 1) else {
                eprintln!("--events-tcp needs an address");
                std::process::exit(2);
            };
            Some(addr.clone())
        }
        None => None,
    };
    if out.is_none() && tcp.is_none() {
        return None;
    }
    cnnre_obs::set_enabled(true);
    cnnre_obs::stream::set_enabled(true);
    if out.is_some() {
        cnnre_obs::stream::set_record(true);
    }
    if let Some(addr) = tcp {
        // A dead viewer must never fail the experiment.
        if let Err(e) = cnnre_obs::stream::connect(&addr) {
            eprintln!("cannot connect event stream to {addr}: {e}");
        }
    }
    out
}

/// The `--serve-obs ADDR` / `--serve-obs-hold` flag pair shared by every
/// experiment binary: starts the live observability daemon
/// ([`cnnre_attacks::obsd`]) so `/metrics`, `/profile`, `/progress`,
/// `/events`, and `/health` are scrapeable while the experiment runs.
/// Also enables the profiler ring and the recorded event stream (they
/// feed `/profile` and `/events`). Call at the top of `main` and pass
/// the result to [`finish_serve_obs`] at the end.
///
/// Exits with usage code 2 on a missing address, and 1 when the bind
/// fails.
#[must_use]
pub fn parse_serve_obs_flag() -> Option<(cnnre_attacks::obsd::ObsDaemon, bool)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hold = args.iter().any(|a| a == "--serve-obs-hold");
    let Some(pos) = args.iter().position(|a| a == "--serve-obs") else {
        if hold {
            eprintln!("--serve-obs-hold needs --serve-obs ADDR");
            std::process::exit(2);
        }
        return None;
    };
    let Some(addr) = args.get(pos + 1) else {
        eprintln!("--serve-obs needs an address (e.g. 127.0.0.1:0)");
        std::process::exit(2);
    };
    cnnre_obs::profile::set_enabled(true);
    cnnre_obs::stream::set_enabled(true);
    cnnre_obs::stream::set_record(true);
    match cnnre_attacks::obsd::serve(addr) {
        Ok(daemon) => Some((daemon, hold)),
        Err(e) => {
            eprintln!("cannot serve observability on {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Finishes a [`parse_serve_obs_flag`] daemon: with `--serve-obs-hold`
/// it keeps serving the finished run's registry until a scraper sends
/// `GET /quit` (how `scripts/check.sh` diffs `/metrics` against the
/// JSON export), then shuts the server and its pool down.
pub fn finish_serve_obs(daemon: Option<(cnnre_attacks::obsd::ObsDaemon, bool)>) {
    let Some((mut daemon, hold)) = daemon else {
        return;
    };
    if hold {
        eprintln!(
            "bench: run finished; still serving http://{} until GET /quit (--serve-obs-hold)",
            daemon.addr()
        );
        daemon.wait_quit();
    }
    daemon.shutdown();
}

/// Drains the recorded event stream into the `.evt` file requested by
/// [`parse_event_flags`] (no-op when `--events-out` was absent) and gives
/// any live TCP clients a moment to drain.
///
/// Exits with code 1 when the file cannot be written.
pub fn write_events(path: Option<std::path::PathBuf>) {
    if cnnre_obs::stream::enabled() {
        cnnre_obs::stream::flush(500);
    }
    let Some(path) = path else { return };
    let bytes = cnnre_obs::stream::take_recorded_bytes();
    let dropped = cnnre_obs::stream::dropped();
    match std::fs::write(&path, &bytes) {
        Ok(()) => eprintln!(
            "events written to {} ({} bytes, {dropped} dropped)",
            path.display(),
            bytes.len()
        ),
        Err(e) => {
            eprintln!("cannot write events to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Drains the timeline recorder and writes the export chosen by the path's
/// extension (`.folded`/`.txt` → flamegraph stacks, anything else → Chrome
/// Trace Event JSON) when [`parse_profile_flags`] returned a destination;
/// no-op otherwise.
///
/// Exits with code 1 when the file cannot be written.
pub fn write_profile(dest: Option<(std::path::PathBuf, cnnre_obs::profile::ClockDomain)>) {
    let Some((path, clock)) = dest else { return };
    let events = cnnre_obs::profile::take();
    let ext_is_folded = path
        .extension()
        .is_some_and(|e| e == "folded" || e == "txt");
    let rendered = if ext_is_folded {
        cnnre_obs::profile::folded_stacks(&events, clock)
    } else {
        cnnre_obs::profile::chrome_trace(&events, clock)
    };
    match std::fs::write(&path, rendered) {
        Ok(()) => eprintln!(
            "profile written to {} ({} events)",
            path.display(),
            events.len()
        ),
        Err(e) => {
            eprintln!("cannot write profile to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
