//! The perf-regression gate: diffs a freshly produced flat `BENCH_*.json`
//! snapshot against a committed baseline under
//! `tests/golden/bench_baseline/` and fails on regressions.
//!
//! # Policy
//!
//! "Worse" is "larger": every exported metric (cycles, DRAM transactions,
//! oracle queries, candidate counts) measures cost, so a value above the
//! baseline by more than the tolerance is a **regression**. Two tiers:
//!
//! * **strict** — deterministic metrics (everything except wall-clock
//!   timings). These come from the simulated-cycle domain and seeded
//!   experiments, so identical code must reproduce them exactly; the
//!   default tolerance is therefore tight ([`GateConfig::rel_tol`]).
//! * **advisory** — wall-clock metrics (`*.wall_ns`). Host timing noise
//!   makes them unenforceable; drifts are reported but never fail the
//!   gate.
//!
//! A metric present in the baseline but missing from the current snapshot
//! is a regression (instrumentation was lost); a new metric is advisory.
//! Values *below* baseline are reported as improvements (exit 0 — but
//! refresh the baseline, see EXPERIMENTS.md).
//!
//! Exit-code convention, matching cnnre-lint and cnnre-audit: 0 clean,
//! 1 regressions, 2 usage/malformed input.
//!
//! The report is byte-deterministic: sorted metric order, fixed number
//! formatting, no timestamps.

use std::collections::BTreeMap;

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative tolerance for strict (cycle-domain) metrics.
    pub rel_tol: f64,
    /// Absolute slack added on top of the relative tolerance (guards
    /// near-zero baselines).
    pub abs_tol: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            rel_tol: 0.01,
            abs_tol: 1e-9,
        }
    }
}

/// One parsed `BENCH_*.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// The `"experiment"` field.
    pub experiment: String,
    /// Metric name → value, sorted.
    pub metrics: BTreeMap<String, f64>,
}

/// Parses the flat JSON object `cnnre-obs` writes for `BENCH_*.json`
/// files: one object, string value for `"experiment"`, finite numbers (or
/// `null`, which is skipped) for everything else.
///
/// # Errors
///
/// Returns a description of the first syntax problem — the gate maps any
/// parse error to exit code 2.
pub fn parse_bench_json(text: &str) -> Result<BenchSnapshot, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut experiment = None;
    let mut metrics = BTreeMap::new();
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
            break;
        }
        if !metrics.is_empty() || experiment.is_some() {
            p.expect(b',')?;
            p.skip_ws();
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        if key == "experiment" {
            if experiment.is_some() {
                return Err("duplicate \"experiment\" key".into());
            }
            experiment = Some(p.string()?);
        } else {
            // A `null` value is a non-finite export — ungateable, skipped.
            if let Some(v) = p.number_or_null()? {
                if metrics.insert(key.clone(), v).is_some() {
                    return Err(format!("duplicate metric \"{key}\""));
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    let experiment = experiment.ok_or("missing \"experiment\" key")?;
    Ok(BenchSnapshot {
        experiment,
        metrics,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                    self.pos += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let start = self.pos;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number_or_null(&mut self) -> Result<Option<f64>, String> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Some)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Outcome for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance.
    Ok,
    /// Strict metric above baseline beyond tolerance — fails the gate.
    Regressed,
    /// Strict metric below baseline beyond tolerance — baseline is stale.
    Improved,
    /// Wall-clock drift (either direction) — reported, never fails.
    Advisory,
    /// In the baseline, absent from the current snapshot — fails the gate.
    Missing,
    /// In the current snapshot only — informational.
    New,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Regressed => "REGRESSED",
            Status::Improved => "improved",
            Status::Advisory => "advisory",
            Status::Missing => "MISSING",
            Status::New => "new",
        }
    }
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Baseline value (`None` for [`Status::New`]).
    pub baseline: Option<f64>,
    /// Current value (`None` for [`Status::Missing`]).
    pub current: Option<f64>,
    /// Verdict.
    pub status: Status,
}

/// The full comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Experiment name (shared by baseline and current).
    pub experiment: String,
    /// Per-metric rows, sorted by name.
    pub deltas: Vec<Delta>,
}

impl GateReport {
    /// Whether any row fails the gate (exit code 1).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| matches!(d.status, Status::Regressed | Status::Missing))
    }

    /// Renders the byte-deterministic report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("perf gate: {}\n", self.experiment);
        let width = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let num = |v: Option<f64>| match v {
            // Fixed formatting mirrors the snapshot writer: integral
            // values print without a fraction (the `v == v.trunc()`
            // comparison is an exact integrality test, not a tolerance).
            Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{}", v as i64),
            Some(v) => format!("{v}"),
            None => "-".to_string(),
        };
        for d in &self.deltas {
            let note = match (d.baseline, d.current) {
                // lint:allow(float-eq): guards the division below
                (Some(b), Some(c)) if b != 0.0 => {
                    format!(" ({:+.2}%)", 100.0 * (c - b) / b)
                }
                _ => String::new(),
            };
            out.push_str(&format!(
                "  {:width$}  {:>16} -> {:>16}  {}{}\n",
                d.name,
                num(d.baseline),
                num(d.current),
                d.status.label(),
                note,
            ));
        }
        let (mut regressed, mut missing, mut improved, mut advisory) = (0, 0, 0, 0);
        for d in &self.deltas {
            match d.status {
                Status::Regressed => regressed += 1,
                Status::Missing => missing += 1,
                Status::Improved => improved += 1,
                Status::Advisory => advisory += 1,
                _ => {}
            }
        }
        out.push_str(&format!(
            "summary: {} metrics, {} regressed, {} missing, {} improved, {} advisory\n",
            self.deltas.len(),
            regressed,
            missing,
            improved,
            advisory,
        ));
        out
    }
}

/// Whether a metric is gated advisorily (wall-clock timing).
#[must_use]
pub fn is_advisory(name: &str) -> bool {
    name.ends_with(".wall_ns")
}

/// Compares a current snapshot against its baseline.
///
/// # Errors
///
/// Returns an error (→ exit 2) when either file fails to parse or the
/// `"experiment"` fields disagree.
pub fn compare(baseline: &str, current: &str, cfg: &GateConfig) -> Result<GateReport, String> {
    let base = parse_bench_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_bench_json(current).map_err(|e| format!("current: {e}"))?;
    if base.experiment != cur.experiment {
        return Err(format!(
            "experiment mismatch: baseline \"{}\" vs current \"{}\"",
            base.experiment, cur.experiment
        ));
    }
    let mut names: Vec<&String> = base.metrics.keys().chain(cur.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let deltas = names
        .into_iter()
        .map(|name| {
            let b = base.metrics.get(name).copied();
            let c = cur.metrics.get(name).copied();
            let status = match (b, c) {
                (Some(_), None) => {
                    if is_advisory(name) {
                        Status::Advisory
                    } else {
                        Status::Missing
                    }
                }
                (None, Some(_)) => Status::New,
                (Some(b), Some(c)) => {
                    let slack = cfg.abs_tol + cfg.rel_tol * b.abs();
                    if (c - b).abs() <= slack {
                        Status::Ok
                    } else if is_advisory(name) {
                        Status::Advisory
                    } else if c > b {
                        Status::Regressed
                    } else {
                        Status::Improved
                    }
                }
                (None, None) => Status::Ok, // unreachable by construction
            };
            Delta {
                name: name.clone(),
                baseline: b,
                current: c,
                status,
            }
        })
        .collect();
    Ok(GateReport {
        experiment: base.experiment,
        deltas,
    })
}

/// One row of the speedup report: a wall-clock metric measured at one
/// thread and at many, against its committed improvement floor.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupDelta {
    /// Wall-clock metric name (e.g. `span.attack.weights.wall_ns`).
    pub name: String,
    /// Single-threaded measurement (`None` when absent from the snapshot).
    pub single: Option<f64>,
    /// Multi-threaded measurement (`None` when absent from the snapshot).
    pub multi: Option<f64>,
    /// Committed minimum speedup (`single / multi` must reach this).
    pub floor: f64,
    /// Measured speedup, when both measurements are present and positive.
    pub speedup: Option<f64>,
    /// Verdict: [`Status::Ok`], [`Status::Regressed`] (below the floor),
    /// or [`Status::Missing`] (a measurement was lost).
    pub status: Status,
}

/// The wall-clock *improvement* gate result — unlike [`GateReport`], which
/// only enforces not-getting-slower on cycle metrics, this one fails when
/// parallel execution stops being faster than sequential.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupReport {
    /// Experiment name (shared by both snapshots).
    pub experiment: String,
    /// Per-metric rows, sorted by name.
    pub deltas: Vec<SpeedupDelta>,
}

impl SpeedupReport {
    /// Whether any row fails the gate (exit code 1).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| matches!(d.status, Status::Regressed | Status::Missing))
    }

    /// Renders the report (deterministic row order and formatting; the
    /// measured values themselves are wall clock, so the rendered numbers
    /// vary run to run).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("speedup gate: {}\n", self.experiment);
        let width = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        for d in &self.deltas {
            let measured = match d.speedup {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:width$}  {:>8} (floor {:.2}x)  {}\n",
                d.name,
                measured,
                d.floor,
                d.status.label(),
            ));
        }
        let failed = self
            .deltas
            .iter()
            .filter(|d| matches!(d.status, Status::Regressed | Status::Missing))
            .count();
        out.push_str(&format!(
            "summary: {} speedup floors, {} failed\n",
            self.deltas.len(),
            failed,
        ));
        out
    }
}

/// Suffix marking a floor entry in the committed `SPEEDUP.json` file.
const MIN_SPEEDUP_SUFFIX: &str = ".min_speedup";

/// Compares single- vs multi-threaded snapshots of one experiment against
/// the committed speedup floors.
///
/// `floors` is a flat snapshot (same format as `BENCH_*.json`, experiment
/// `"speedup"`) whose keys read `<experiment>.<metric>.min_speedup`;
/// entries for other experiments are ignored, so one file serves the whole
/// gate. For every applicable floor the measured speedup is
/// `single / multi` over the named wall-clock metric, and falling below
/// the floor fails the gate — this is an *improvement* baseline, not a
/// regression one.
///
/// # Errors
///
/// Returns an error (→ exit 2) when any input fails to parse, the two
/// measurement snapshots disagree on the experiment, or no floor applies
/// to the experiment (a silently empty gate would pass vacuously).
pub fn compare_speedup(floors: &str, single: &str, multi: &str) -> Result<SpeedupReport, String> {
    let floors = parse_bench_json(floors).map_err(|e| format!("floors: {e}"))?;
    let single = parse_bench_json(single).map_err(|e| format!("single-thread: {e}"))?;
    let multi = parse_bench_json(multi).map_err(|e| format!("multi-thread: {e}"))?;
    if single.experiment != multi.experiment {
        return Err(format!(
            "experiment mismatch: single \"{}\" vs multi \"{}\"",
            single.experiment, multi.experiment
        ));
    }
    let prefix = format!("{}.", single.experiment);
    let mut deltas = Vec::new();
    for (key, &floor) in &floors.metrics {
        let Some(rest) = key.strip_prefix(&prefix) else {
            continue;
        };
        let Some(metric) = rest.strip_suffix(MIN_SPEEDUP_SUFFIX) else {
            continue;
        };
        if !(floor.is_finite() && floor > 0.0) {
            return Err(format!("floors: \"{key}\" must be a positive number"));
        }
        let s = single.metrics.get(metric).copied();
        let m = multi.metrics.get(metric).copied();
        let speedup = match (s, m) {
            (Some(s), Some(m)) if m > 0.0 => Some(s / m),
            _ => None,
        };
        let status = match speedup {
            None => Status::Missing,
            Some(sp) if sp < floor => Status::Regressed,
            Some(_) => Status::Ok,
        };
        deltas.push(SpeedupDelta {
            name: metric.to_string(),
            single: s,
            multi: m,
            floor,
            speedup,
            status,
        });
    }
    if deltas.is_empty() {
        return Err(format!(
            "floors: no \"{prefix}<metric>{MIN_SPEEDUP_SUFFIX}\" entry for this experiment"
        ));
    }
    deltas.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(SpeedupReport {
        experiment: single.experiment,
        deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "{\n  \"experiment\": \"fig3\",\n  \"accel.dram.reads\": 100,\n  \"span.accel.run.cycles\": 5000,\n  \"span.accel.run.wall_ns\": 123456\n}\n";

    #[test]
    fn identical_snapshots_pass() {
        let r = compare(BASE, BASE, &GateConfig::default()).unwrap();
        assert!(!r.failed());
        assert!(r.deltas.iter().all(|d| d.status == Status::Ok));
    }

    #[test]
    fn inflated_cycles_regress_but_wall_is_advisory() {
        let cur = BASE
            .replace("5000", "6000") // +20% cycles: regression
            .replace("123456", "999999"); // wall drift: advisory
        let r = compare(BASE, &cur, &GateConfig::default()).unwrap();
        assert!(r.failed());
        let by_name = |n: &str| {
            r.deltas
                .iter()
                .find(|d| d.name == n)
                .map(|d| d.status)
                .unwrap()
        };
        assert_eq!(by_name("span.accel.run.cycles"), Status::Regressed);
        assert_eq!(by_name("span.accel.run.wall_ns"), Status::Advisory);
        assert_eq!(by_name("accel.dram.reads"), Status::Ok);
    }

    #[test]
    fn improvement_does_not_fail() {
        let cur = BASE.replace("5000", "4000");
        let r = compare(BASE, &cur, &GateConfig::default()).unwrap();
        assert!(!r.failed());
        assert!(r
            .deltas
            .iter()
            .any(|d| d.status == Status::Improved && d.name == "span.accel.run.cycles"));
    }

    #[test]
    fn missing_metric_fails_and_new_metric_does_not() {
        let cur = "{\n  \"experiment\": \"fig3\",\n  \"accel.dram.reads\": 100,\n  \"accel.dram.writes\": 7,\n  \"span.accel.run.wall_ns\": 123456\n}\n";
        let r = compare(BASE, cur, &GateConfig::default()).unwrap();
        assert!(r.failed());
        let statuses: Vec<(String, Status)> = r
            .deltas
            .iter()
            .map(|d| (d.name.clone(), d.status))
            .collect();
        assert!(statuses.contains(&("span.accel.run.cycles".into(), Status::Missing)));
        assert!(statuses.contains(&("accel.dram.writes".into(), Status::New)));
    }

    #[test]
    fn malformed_and_mismatched_inputs_error() {
        assert!(compare("not json", BASE, &GateConfig::default()).is_err());
        assert!(compare(BASE, "{\"experiment\": \"fig3\"", &GateConfig::default()).is_err());
        let other = BASE.replace("fig3", "fig7");
        assert!(compare(BASE, &other, &GateConfig::default()).is_err());
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let cur = BASE.replace("5000", "6000");
        let a = compare(BASE, &cur, &GateConfig::default())
            .unwrap()
            .render();
        let b = compare(BASE, &cur, &GateConfig::default())
            .unwrap()
            .render();
        assert_eq!(a, b);
        assert!(a.contains("REGRESSED"));
        assert!(a.contains("summary: 3 metrics, 1 regressed, 0 missing, 0 improved, 0 advisory"));
    }

    const FLOORS: &str = "{\n  \"experiment\": \"speedup\",\n  \"fig3.span.accel.run.wall_ns.min_speedup\": 3,\n  \"fig7.span.attack.weights.wall_ns.min_speedup\": 3\n}\n";

    #[test]
    fn speedup_above_floor_passes() {
        let multi = BASE.replace("123456", "30000"); // 123456/30000 ≈ 4.1x
        let r = compare_speedup(FLOORS, BASE, &multi).unwrap();
        assert!(!r.failed());
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].name, "span.accel.run.wall_ns");
        assert_eq!(r.deltas[0].status, Status::Ok);
        assert!(r.deltas[0].speedup.unwrap() > 4.0);
    }

    #[test]
    fn speedup_below_floor_fails() {
        let multi = BASE.replace("123456", "100000"); // ≈ 1.2x < 3x floor
        let r = compare_speedup(FLOORS, BASE, &multi).unwrap();
        assert!(r.failed());
        assert_eq!(r.deltas[0].status, Status::Regressed);
        assert!(r.render().contains("REGRESSED"));
    }

    #[test]
    fn speedup_missing_metric_fails() {
        let multi = "{\n  \"experiment\": \"fig3\",\n  \"accel.dram.reads\": 100\n}\n";
        let r = compare_speedup(FLOORS, BASE, multi).unwrap();
        assert!(r.failed());
        assert_eq!(r.deltas[0].status, Status::Missing);
    }

    #[test]
    fn speedup_requires_an_applicable_floor() {
        // fig7 floors exist but the snapshots are fig3-with-another-name.
        let other_base = BASE.replace("fig3", "table4");
        let other_multi = other_base.replace("123456", "30000");
        assert!(compare_speedup(FLOORS, &other_base, &other_multi).is_err());
        // Mismatched experiments between the two measurements error too.
        let fig7 = BASE.replace("fig3", "fig7");
        assert!(compare_speedup(FLOORS, BASE, &fig7).is_err());
    }

    #[test]
    fn parser_round_trips_the_obs_writer() {
        let snap = parse_bench_json(BASE).unwrap();
        assert_eq!(snap.experiment, "fig3");
        assert_eq!(snap.metrics.get("accel.dram.reads"), Some(&100.0));
        assert_eq!(snap.metrics.len(), 3);
        // null values (non-finite exports) are skipped, not errors.
        let with_null = "{\"experiment\": \"x\", \"a.b\": null}";
        assert!(parse_bench_json(with_null).unwrap().metrics.is_empty());
    }
}
