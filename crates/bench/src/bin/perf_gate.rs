//! `perf_gate` — diff freshly produced `BENCH_*.json` snapshots against
//! committed baselines.
//!
//! ```console
//! $ perf_gate <baseline.json> <current.json> [--rel-tol FRAC] [--report FILE]
//! ```
//!
//! Exit codes follow the workspace convention: 0 clean (improvements and
//! wall-clock drift included), 1 regressions or lost metrics, 2 usage
//! errors or malformed input. The report written to stdout (and to
//! `--report FILE` when given) is byte-deterministic. See
//! `scripts/perf_gate.sh` for the end-to-end gate over fig3/fig7/table3.

use cnnre_bench::gate::{compare, GateConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = GateConfig::default();
    if let Some(v) = take_flag_value(&mut args, "--rel-tol") {
        match v.parse::<f64>() {
            Ok(t) if t >= 0.0 => cfg.rel_tol = t,
            _ => {
                eprintln!("--rel-tol expects a non-negative fraction, got '{v}'");
                std::process::exit(2);
            }
        }
    }
    let report_path = take_flag_value(&mut args, "--report");
    let [baseline_path, current_path] = &args[..] else {
        eprintln!(
            "usage: perf_gate <baseline.json> <current.json> [--rel-tol FRAC] [--report FILE]"
        );
        std::process::exit(2);
    };
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = read(baseline_path);
    let current = read(current_path);
    let report = match compare(&baseline, &current, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf gate: {e}");
            std::process::exit(2);
        }
    };
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(i32::from(report.failed()));
}

/// Removes `name <value>` from `args`, returning the value; exits 2 when
/// the flag is present without a value.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        eprintln!("{name} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
