//! `perf_gate` — diff freshly produced `BENCH_*.json` snapshots against
//! committed baselines.
//!
//! ```console
//! $ perf_gate <baseline.json> <current.json> [--rel-tol FRAC] [--report FILE]
//! $ perf_gate --speedup <single.json> <multi.json> --floors <SPEEDUP.json>
//! ```
//!
//! The default mode fails on regressions (cost metrics getting larger).
//! `--speedup` is the *improvement* gate: it compares a single-threaded
//! and a multi-threaded snapshot of the same experiment against the
//! committed minimum-speedup floors, failing when parallel execution
//! stops being faster than sequential.
//!
//! Exit codes follow the workspace convention: 0 clean (improvements and
//! wall-clock drift included), 1 regressions or lost metrics, 2 usage
//! errors or malformed input. The report written to stdout (and to
//! `--report FILE` when given) is byte-deterministic (speedup reports
//! print measured wall-clock ratios, which vary run to run). See
//! `scripts/perf_gate.sh` for the end-to-end gate over fig3/fig7/table3.

use cnnre_bench::gate::{compare, compare_speedup, GateConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = GateConfig::default();
    if let Some(v) = take_flag_value(&mut args, "--rel-tol") {
        match v.parse::<f64>() {
            Ok(t) if t >= 0.0 => cfg.rel_tol = t,
            _ => {
                eprintln!("--rel-tol expects a non-negative fraction, got '{v}'");
                std::process::exit(2);
            }
        }
    }
    let report_path = take_flag_value(&mut args, "--report");
    let floors_path = take_flag_value(&mut args, "--floors");
    let speedup_mode = match args.iter().position(|a| a == "--speedup") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let (rendered, failed) = if speedup_mode {
        let (Some(floors_path), [single_path, multi_path]) = (floors_path, &args[..]) else {
            eprintln!("usage: perf_gate --speedup <single.json> <multi.json> --floors <SPEEDUP.json> [--report FILE]");
            std::process::exit(2);
        };
        let floors = read(&floors_path);
        let single = read(single_path);
        let multi = read(multi_path);
        match compare_speedup(&floors, &single, &multi) {
            Ok(r) => (r.render(), r.failed()),
            Err(e) => {
                eprintln!("speedup gate: {e}");
                std::process::exit(2);
            }
        }
    } else {
        if floors_path.is_some() {
            eprintln!("--floors only applies with --speedup");
            std::process::exit(2);
        }
        let [baseline_path, current_path] = &args[..] else {
            eprintln!(
                "usage: perf_gate <baseline.json> <current.json> [--rel-tol FRAC] [--report FILE]"
            );
            std::process::exit(2);
        };
        let baseline = read(baseline_path);
        let current = read(current_path);
        match compare(&baseline, &current, &cfg) {
            Ok(r) => (r.render(), r.failed()),
            Err(e) => {
                eprintln!("perf gate: {e}");
                std::process::exit(2);
            }
        }
    };
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(i32::from(failed));
}

/// Removes `name <value>` from `args`, returning the value; exits 2 when
/// the flag is present without a value.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        eprintln!("{name} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}
