//! Regenerates the paper's Figure 5 (SqueezeNet candidate top-5 ranking).
use cnnre_bench::experiments::fig5;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let cfg = if cnnre_bench::quick_mode() {
        fig5::RankingConfig::quick()
    } else {
        fig5::RankingConfig::standard()
    };
    let fig = fig5::run(&cfg);
    println!("{}", fig5::render(&fig));
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig5");
    cnnre_bench::finish_serve_obs(obs);
}
