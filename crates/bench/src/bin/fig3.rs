//! Regenerates the paper's Figure 3 (plus a CSV for external plotting).
use std::io::Write;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let fig = cnnre_bench::experiments::fig3::run(97);
    println!("{}", cnnre_bench::experiments::fig3::render(&fig));
    let path = std::env::temp_dir().join("cnnre_fig3_trace.csv");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "cycle,address,is_write");
        for (cycle, addr, w) in &fig.series {
            let _ = writeln!(f, "{cycle},{addr},{}", u8::from(*w));
        }
        println!("full series written to {}", path.display());
    }
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig3");
    cnnre_bench::finish_serve_obs(obs);
}
