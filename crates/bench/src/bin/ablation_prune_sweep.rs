//! Weight-attack robustness sweep over victim compression levels.
//!
//! `CNNRE_QUICK=1` shrinks the victim for a fast smoke run.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let quick = std::env::var_os("CNNRE_QUICK").is_some();
    let (filters, input_w) = if quick { (4, 39) } else { (16, 79) };
    let fractions = [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
    let points = cnnre_bench::experiments::ablation_prune_sweep::run(filters, input_w, &fractions);
    println!(
        "{}",
        cnnre_bench::experiments::ablation_prune_sweep::render(&points)
    );
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "ablation_prune_sweep");
    cnnre_bench::finish_serve_obs(obs);
}
