//! Regenerates the zero-pruning traffic ablation.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let rows = cnnre_bench::experiments::ablation::run();
    println!("{}", cnnre_bench::experiments::ablation::render(&rows));
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "ablation_pruning");
    cnnre_bench::finish_serve_obs(obs);
}
