//! Regenerates the zero-pruning traffic ablation.
fn main() {
    let rows = cnnre_bench::experiments::ablation::run();
    println!("{}", cnnre_bench::experiments::ablation::render(&rows));
}
