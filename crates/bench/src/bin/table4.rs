//! Regenerates the paper's Table 4.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let t = cnnre_bench::experiments::table4::run();
    println!("{}", cnnre_bench::experiments::table4::render(&t));
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "table4");
    cnnre_bench::finish_serve_obs(obs);
}
