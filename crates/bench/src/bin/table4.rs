//! Regenerates the paper's Table 4.
fn main() {
    let t = cnnre_bench::experiments::table4::run();
    println!("{}", cnnre_bench::experiments::table4::render(&t));
}
