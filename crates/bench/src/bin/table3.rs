//! Regenerates the paper's Table 3.
fn main() {
    cnnre_bench::parse_threads_flag();
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let rows = cnnre_bench::experiments::table3::run();
    println!("{}", cnnre_bench::experiments::table3::render(&rows));
    let reduction = cnnre_bench::experiments::table3::reduction(&rows);
    println!(
        "{}",
        cnnre_bench::experiments::table3::render_reduction(&reduction)
    );
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "table3");
    cnnre_bench::finish_serve_obs(obs);
}
