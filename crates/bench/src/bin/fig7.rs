//! Regenerates the paper's Figure 7 (CONV1 weight/bias ratio recovery).
use cnnre_bench::experiments::fig7;

fn main() {
    cnnre_bench::parse_threads_flag();
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let cfg = if cnnre_bench::quick_mode() {
        fig7::Fig7Config::quick()
    } else {
        fig7::Fig7Config::standard()
    };
    let fig = fig7::run(&cfg);
    println!("{}", fig7::render(&fig));
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig7");
    cnnre_bench::finish_serve_obs(obs);
}
