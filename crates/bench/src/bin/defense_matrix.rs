//! Every trace-level mitigation vs. the structure attack, side by side.
fn main() {
    let (baseline, rows) = cnnre_bench::experiments::defense_matrix::run();
    println!("{}", cnnre_bench::experiments::defense_matrix::render(baseline, &rows));
}
