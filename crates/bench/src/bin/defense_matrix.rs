//! Every trace-level mitigation vs. the structure attack, side by side.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let (baseline, rows) = cnnre_bench::experiments::defense_matrix::run();
    println!(
        "{}",
        cnnre_bench::experiments::defense_matrix::render(baseline, &rows)
    );
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "defense_matrix");
    cnnre_bench::finish_serve_obs(obs);
}
