//! Regenerates the paper's Figure 4 (candidate accuracy ranking).
use cnnre_bench::experiments::fig4;

fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let cfg = if cnnre_bench::quick_mode() {
        fig4::RankingConfig::quick()
    } else {
        fig4::RankingConfig::standard()
    };
    let fig = fig4::run(&cfg);
    println!("{}", fig4::render(&fig));
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "fig4");
    cnnre_bench::finish_serve_obs(obs);
}
