//! Regenerates the ORAM defense sweep.
fn main() {
    let (baseline, rows) = cnnre_bench::experiments::defense::run();
    println!("{}", cnnre_bench::experiments::defense::render(baseline, &rows));
}
