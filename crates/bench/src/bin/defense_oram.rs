//! Regenerates the ORAM defense sweep.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let events = cnnre_bench::parse_event_flags();
    let profile = cnnre_bench::parse_profile_flags();
    let obs = cnnre_bench::parse_serve_obs_flag();
    let (baseline, rows) = cnnre_bench::experiments::defense::run();
    println!(
        "{}",
        cnnre_bench::experiments::defense::render(baseline, &rows)
    );
    cnnre_bench::write_profile(profile);
    cnnre_bench::write_events(events);
    cnnre_bench::write_out(out, "defense_oram");
    cnnre_bench::finish_serve_obs(obs);
}
