//! Regenerates the ORAM defense sweep.
fn main() {
    let out = cnnre_bench::parse_out_flag();
    let (baseline, rows) = cnnre_bench::experiments::defense::run();
    println!(
        "{}",
        cnnre_bench::experiments::defense::render(baseline, &rows)
    );
    cnnre_bench::write_out(out, "defense_oram");
}
