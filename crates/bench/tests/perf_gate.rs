//! End-to-end tests of the `perf_gate` binary: exit-code contract
//! (0 clean / 1 regression / 2 malformed), advisory wall-clock handling,
//! and byte-determinism of the rendered report. Fixture snapshots live in
//! `tests/fixtures/perf_gate/`; `regressed.json` inflates one strict
//! metric by ~10% (and drifts the advisory `wall_ns` by ~5x, which must
//! NOT fail the gate on its own).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/perf_gate")
        .join(name)
        .display()
        .to_string()
}

fn run_gate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .args(args)
        .output()
        .expect("perf_gate binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("terminated by exit, not signal")
}

#[test]
fn identical_snapshots_pass() {
    let out = run_gate(&[&fixture("baseline.json"), &fixture("baseline.json")]);
    assert_eq!(exit_code(&out), 0, "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regressed"), "got: {stdout}");
}

#[test]
fn seeded_regression_fails_and_wall_drift_is_advisory() {
    let out = run_gate(&[&fixture("baseline.json"), &fixture("regressed.json")]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The inflated strict metric is reported as a regression...
    assert!(stdout.contains("accel.dram.reads"), "got: {stdout}");
    assert!(stdout.contains("1 regressed"), "got: {stdout}");
    // ...while the 5x wall-clock drift only shows up as advisory.
    assert!(stdout.contains("1 advisory"), "got: {stdout}");
}

#[test]
fn improvements_do_not_fail_the_gate() {
    let out = run_gate(&[&fixture("baseline.json"), &fixture("improved.json")]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 improved"), "got: {stdout}");
}

#[test]
fn widened_tolerance_absorbs_the_regression() {
    let out = run_gate(&[
        &fixture("baseline.json"),
        &fixture("regressed.json"),
        "--rel-tol",
        "0.25",
    ]);
    assert_eq!(exit_code(&out), 0);
}

#[test]
fn malformed_baseline_is_a_usage_error() {
    let out = run_gate(&[&fixture("malformed.json"), &fixture("baseline.json")]);
    assert_eq!(exit_code(&out), 2);
    // Both operand orders are usage errors, as is a missing file.
    let out = run_gate(&[&fixture("baseline.json"), &fixture("malformed.json")]);
    assert_eq!(exit_code(&out), 2);
    let out = run_gate(&[&fixture("baseline.json"), &fixture("no_such_file.json")]);
    assert_eq!(exit_code(&out), 2);
    let out = run_gate(&[&fixture("baseline.json")]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn report_is_byte_deterministic_and_mirrored_to_file() {
    let report_path = std::env::temp_dir().join("cnnre_perf_gate_test_report.txt");
    let args = [
        fixture("baseline.json"),
        fixture("regressed.json"),
        "--report".to_string(),
        report_path.display().to_string(),
    ];
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let first = run_gate(&args);
    let on_disk = std::fs::read(&report_path).expect("--report wrote the report");
    let second = run_gate(&args);
    let _ = std::fs::remove_file(&report_path);
    assert_eq!(first.stdout, second.stdout, "report must be deterministic");
    assert_eq!(first.stdout, on_disk, "file copy must match stdout");
}
