//! The `cnnre-lint` binary: lints the workspace and exits nonzero on
//! violations. See `--help` for flags.

use cnnre_lint::{lint_workspace_with, render_human, render_json, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cnnre-lint — in-tree static analysis for the cnn-reveng workspace

USAGE:
    cnnre-lint [--root DIR] [--format human|json] [--out FILE] [--quiet]
               [--include-tests]
    cnnre-lint --list-rules
    cnnre-lint --explain CODE

FLAGS:
    --root DIR        workspace root to lint (default: current directory)
    --format FMT      report format: human (default) or json
    --out FILE        also write the report (in the chosen format) to FILE
    --quiet           print nothing on success
    --include-tests   also lint tests/, benches/, examples/ under the
                      relaxed rule set (wallclock + hash-iter only)
    --list-rules      print the rule table and exit
    --explain CODE    print a rule's rationale and a minimal example, then
                      exit; CODE is a rule name (ct-branch) or code (CT001)

EXIT CODES:
    0  clean          1  violations found          2  usage or I/O error
";

struct Opts {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
    quiet: bool,
    list_rules: bool,
    include_tests: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        out: None,
        quiet: false,
        list_rules: false,
        include_tests: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = args.next().map(PathBuf::from).ok_or("--root needs a DIR")?;
            }
            "--format" => match args.next().as_deref() {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                other => {
                    return Err(format!(
                        "--format must be human or json, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--out" => {
                opts.out = Some(args.next().map(PathBuf::from).ok_or("--out needs a FILE")?);
            }
            "--quiet" => opts.quiet = true,
            "--include-tests" => opts.include_tests = true,
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain needs a rule name or code")?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cnnre-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(query) = &opts.explain {
        let Some(rule) = Rule::from_name(query) else {
            eprintln!(
                "cnnre-lint: unknown rule {query:?} (see --list-rules for names; \
                 CT/CR rules also answer to their codes, e.g. CT001)"
            );
            return ExitCode::from(2);
        };
        match rule.code() {
            Some(code) => println!("{code} ({})", rule.name()),
            None => println!("{}", rule.name()),
        }
        println!();
        println!("{}", rule.explain());
        return ExitCode::SUCCESS;
    }

    if opts.list_rules {
        for rule in Rule::ALL {
            let code = rule.code().unwrap_or("");
            println!("{:<20} {:<6} {}", rule.name(), code, rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let report = match lint_workspace_with(&opts.root, opts.include_tests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cnnre-lint: failed to read {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        render_json(&report.diagnostics, report.files_scanned)
    } else {
        render_human(&report.diagnostics)
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("cnnre-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if report.is_clean() {
        if opts.json && !opts.quiet {
            print!("{rendered}");
        } else if !opts.quiet {
            println!(
                "cnnre-lint: clean ({} files scanned, {} rules)",
                report.files_scanned,
                Rule::ALL.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        print!("{rendered}");
        if !opts.json {
            println!(
                "cnnre-lint: {} violation(s) in {} file(s) ({} files scanned)",
                report.diagnostics.len(),
                {
                    let mut files: Vec<&str> =
                        report.diagnostics.iter().map(|d| d.file.as_str()).collect();
                    files.dedup();
                    files.len()
                },
                report.files_scanned
            );
        }
        ExitCode::FAILURE
    }
}
