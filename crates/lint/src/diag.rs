//! Diagnostics and their renderings (human table, machine JSON).

use std::fmt;

/// The rule classes `cnnre-lint` enforces. Each maps to an invariant the
/// attack pipeline depends on (see DESIGN.md §8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now` / `SystemTime::now`) outside the
    /// observability crate's designated wall-clock modules.
    Wallclock,
    /// `HashMap` / `HashSet` on a deterministic export or solver path.
    HashIter,
    /// `unwrap` / `expect` / `panic!` / `todo!` / `unimplemented!` in
    /// library non-test code.
    Panic,
    /// Truncation-capable `as` casts in layer-geometry arithmetic.
    Cast,
    /// Non-`Relaxed` atomic ordering in `obs` without a justification
    /// comment.
    AtomicOrdering,
    /// `==` / `!=` applied to a float expression outside test code.
    FloatEq,
    /// Metric-name literal passed to an `obs` recording call that violates
    /// the documented schema (DESIGN.md §10).
    MetricName,
    /// CT001 — secret-dependent branch (`if`/`match` on tainted data) in a
    /// constant-trace-scoped file.
    CtBranch,
    /// CT002 — secret-indexed memory access (`a[secret]`) in a
    /// constant-trace-scoped file.
    CtIndex,
    /// CT003 — variable-latency arithmetic (`/`, `%`, `pow`, …) on secret
    /// operands in a constant-trace-scoped file.
    CtArith,
    /// CT004 — secret-dependent loop bound or trip count in a
    /// constant-trace-scoped file.
    CtLoop,
    /// CR001 — mutable global state (`static mut`, interior-mutable
    /// `thread_local!`) on a path slated to become a `Send + Sync` engine.
    CrStaticMut,
    /// CR002 — non-`Sync` interior mutability (`RefCell`/`Cell`/`Rc`) on a
    /// path slated to become a `Send + Sync` engine.
    CrInteriorMut,
    /// CR003 — nested lock acquisition (a second lock taken while one is
    /// held) without a documented ordering.
    CrLockOrder,
    /// CR004 — `Ordering::Relaxed` atomic load flowing into a control
    /// decision (dataflow upgrade of [`Rule::AtomicOrdering`]).
    CrRelaxedControl,
    /// SY001 — direct `std::sync` / `std::thread` use in a crate whose
    /// concurrency must stay model-checkable via the `cnnre_model` shims.
    RawSync,
    /// A well-formed `lint:allow` directive that no longer suppresses any
    /// finding.
    StaleAllow,
    /// Malformed or unknown `lint:allow` suppression directive.
    AllowSyntax,
}

impl Rule {
    /// All rules, in severity/report order.
    pub const ALL: [Rule; 18] = [
        Rule::Wallclock,
        Rule::HashIter,
        Rule::Panic,
        Rule::Cast,
        Rule::AtomicOrdering,
        Rule::FloatEq,
        Rule::MetricName,
        Rule::CtBranch,
        Rule::CtIndex,
        Rule::CtArith,
        Rule::CtLoop,
        Rule::CrStaticMut,
        Rule::CrInteriorMut,
        Rule::CrLockOrder,
        Rule::CrRelaxedControl,
        Rule::RawSync,
        Rule::StaleAllow,
        Rule::AllowSyntax,
    ];

    /// The short name used in reports and in `lint:allow(<name>)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::HashIter => "hash-iter",
            Rule::Panic => "panic",
            Rule::Cast => "cast",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::FloatEq => "float-eq",
            Rule::MetricName => "metric-name",
            Rule::CtBranch => "ct-branch",
            Rule::CtIndex => "ct-index",
            Rule::CtArith => "ct-arith",
            Rule::CtLoop => "ct-loop",
            Rule::CrStaticMut => "cr-static-mut",
            Rule::CrInteriorMut => "cr-interior-mut",
            Rule::CrLockOrder => "cr-lock-order",
            Rule::CrRelaxedControl => "cr-relaxed-control",
            Rule::RawSync => "raw-sync",
            Rule::StaleAllow => "stale-allow",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// The stable short code (`CT001`, `CR003`, …) for rules that have one.
    ///
    /// Only the taint/concurrency families carry codes; the original
    /// surface rules are addressed by name.
    #[must_use]
    pub fn code(self) -> Option<&'static str> {
        match self {
            Rule::CtBranch => Some("CT001"),
            Rule::CtIndex => Some("CT002"),
            Rule::CtArith => Some("CT003"),
            Rule::CtLoop => Some("CT004"),
            Rule::CrStaticMut => Some("CR001"),
            Rule::CrInteriorMut => Some("CR002"),
            Rule::CrLockOrder => Some("CR003"),
            Rule::CrRelaxedControl => Some("CR004"),
            Rule::RawSync => Some("SY001"),
            _ => None,
        }
    }

    /// One-line description for `--list-rules`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Wallclock => {
                "no Instant::now/SystemTime::now outside obs' wall-clock modules \
                 (deterministic --metrics snapshots)"
            }
            Rule::HashIter => {
                "no HashMap/HashSet in core/trace/accel deterministic paths; \
                 use BTreeMap/BTreeSet or justify that ordering never escapes"
            }
            Rule::Panic => {
                "no unwrap/expect/panic!/todo!/unimplemented! in library crates' \
                 non-test code"
            }
            Rule::Cast => {
                "no truncation-capable `as` casts in layer-geometry arithmetic \
                 (nn::geometry, core::structure, accel::layout)"
            }
            Rule::AtomicOrdering => {
                "non-Relaxed atomic orderings in obs must carry a justification \
                 comment on the same or preceding line"
            }
            Rule::FloatEq => {
                "no ==/!= on float expressions outside test code; use \
                 total_cmp, an epsilon compare, or justify exactness"
            }
            Rule::MetricName => {
                "string literals passed to obs::counter/gauge/histogram/\
                 series/span must match the metric schema: lowercase dotted \
                 path, known subsystem prefix, `_ns` only as `.wall_ns`"
            }
            Rule::CtBranch => {
                "CT001: no if/match on secret-derived data in constant-trace \
                 scoped files (defense & accel paths)"
            }
            Rule::CtIndex => {
                "CT002: no slice/array indexing with a secret-derived index \
                 in constant-trace scoped files"
            }
            Rule::CtArith => {
                "CT003: no variable-latency arithmetic (/, %, pow, div_euclid, \
                 …) on secret-derived operands in constant-trace scoped files"
            }
            Rule::CtLoop => {
                "CT004: no loop bound, trip count, or iterated collection \
                 derived from secrets in constant-trace scoped files"
            }
            Rule::CrStaticMut => {
                "CR001: no `static mut` or interior-mutable thread_local \
                 state on solver/oracle paths slated for Send + Sync"
            }
            Rule::CrInteriorMut => {
                "CR002: no RefCell/Cell/Rc/UnsafeCell in solver/oracle paths \
                 slated for Send + Sync"
            }
            Rule::CrLockOrder => {
                "CR003: no second lock acquired while another guard is live \
                 without a documented ordering"
            }
            Rule::CrRelaxedControl => {
                "CR004: no Ordering::Relaxed atomic load flowing into an \
                 if/match/while control decision"
            }
            Rule::RawSync => {
                "SY001: no direct std::sync/std::thread in core/accel/trace/\
                 obs non-test code; route through the cnnre_model::sync and \
                 cnnre_model::thread shims"
            }
            Rule::StaleAllow => {
                "lint:allow directives that no longer suppress any finding \
                 must be deleted"
            }
            Rule::AllowSyntax => {
                "lint:allow directives must name a known rule and give a \
                 non-empty reason"
            }
        }
    }

    /// Multi-paragraph rationale + minimal example for `--explain`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Wallclock => {
                "Wall-clock reads make --metrics snapshots nondeterministic, so\n\
                 they are confined to obs' designated wall-clock modules.\n\n\
                 Fails:   let t = std::time::Instant::now();\n\
                 Fix:     route timing through obs::span / obs::profile."
            }
            Rule::HashIter => {
                "HashMap/HashSet iteration order is randomized per process, so\n\
                 any export or solver path that iterates one is nondeterministic.\n\n\
                 Fails:   let mut m: HashMap<u32, f32> = HashMap::new();\n\
                 Fix:     use BTreeMap/BTreeSet, or justify that ordering never\n\
                 escapes with lint:allow(hash-iter): <reason>."
            }
            Rule::Panic => {
                "Library code must surface errors as values; panics abort the\n\
                 whole attack pipeline from deep inside a crate.\n\n\
                 Fails:   let v = map.get(&k).unwrap();\n\
                 Fix:     return Result/Option, or justify unreachability with\n\
                 lint:allow(panic): <reason>."
            }
            Rule::Cast => {
                "Truncation-capable `as` casts silently wrap layer-geometry\n\
                 arithmetic, corrupting candidate enumeration.\n\n\
                 Fails:   let w = (h * scale) as u16;\n\
                 Fix:     use try_from / widen the type."
            }
            Rule::AtomicOrdering => {
                "obs is a hot path; stronger-than-Relaxed orderings there need\n\
                 a written justification so fences are auditable.\n\n\
                 Fails:   FLAG.store(true, Ordering::SeqCst);\n\
                 Fix:     use Relaxed, or add a justification comment on the\n\
                 same or preceding line."
            }
            Rule::FloatEq => {
                "Exact float equality is almost always a latent bug in ranking\n\
                 and threshold code.\n\n\
                 Fails:   if score == best { ... }\n\
                 Fix:     use total_cmp or an epsilon compare."
            }
            Rule::MetricName => {
                "Metric names feed dashboards and the perf-regression gate; a\n\
                 typo silently drops data.\n\n\
                 Fails:   obs::counter(\"Solver.Steps\", 1);\n\
                 Fix:     lowercase dotted path with a known subsystem prefix,\n\
                 e.g. obs::counter(\"solver.steps\", 1)."
            }
            Rule::CtBranch => {
                "CT001 — secret-dependent branch.\n\n\
                 A branch whose condition derives from secret data (layer\n\
                 geometry, weights, traces) executes different code per secret\n\
                 value; instruction-cache and timing side channels read that\n\
                 difference directly (PAPER.md; Alam & Mukhopadhyay 1811.05259).\n\
                 Defense code must be branchless in secrets.\n\n\
                 Fails:   fn pad(t: &Trace) { if t.events().len() > 4 { ... } }\n\
                 Fix:     compute both sides and select arithmetically, or mask\n\
                 with a constant-shape loop; else justify with\n\
                 lint:allow(ct-branch): <reason>."
            }
            Rule::CtIndex => {
                "CT002 — secret-indexed memory access.\n\n\
                 a[secret] makes the accessed cache line a function of the\n\
                 secret — exactly the address leak the paper's attack decodes.\n\
                 Constant-trace code must touch addresses independent of\n\
                 secrets.\n\n\
                 Fails:   let line = lut[trace.events()[0].addr as usize];\n\
                 Fix:     scan the whole table with arithmetic select (ORAM-\n\
                 style), or justify with lint:allow(ct-index): <reason>."
            }
            Rule::CtArith => {
                "CT003 — variable-time arithmetic on secrets.\n\n\
                 Integer division/remainder and float transcendentals take\n\
                 operand-dependent cycles on real cores; applying them to\n\
                 secrets leaks through timing.\n\n\
                 Fails:   let rows = total / geom.stride;\n\
                 Fix:     hoist to public values, use shifts for powers of two,\n\
                 or justify with lint:allow(ct-arith): <reason>."
            }
            Rule::CtLoop => {
                "CT004 — secret-dependent loop bound.\n\n\
                 A trip count derived from secrets modulates total runtime and\n\
                 trace length — the coarsest, most robust leak of all.\n\n\
                 Fails:   for ev in trace.events() { pad(ev); }\n\
                 Fix:     iterate to a public worst-case bound and mask excess\n\
                 iterations, or justify with lint:allow(ct-loop): <reason>."
            }
            Rule::CrStaticMut => {
                "CR001 — mutable global state.\n\n\
                 ROADMAP item 1 shards the candidate search across threads;\n\
                 `static mut` and interior-mutable thread_locals on those paths\n\
                 are data races or silent per-thread divergence waiting to\n\
                 happen.\n\n\
                 Fails:   static mut CACHE: Option<Table> = None;\n\
                 Fix:     pass state through &self / &mut self, or use a lock\n\
                 with a documented scope."
            }
            Rule::CrInteriorMut => {
                "CR002 — non-Sync interior mutability.\n\n\
                 RefCell/Cell/Rc make a type !Sync, so any solver/oracle struct\n\
                 holding one cannot be shared across the planned worker pool.\n\n\
                 Fails:   struct Oracle { memo: RefCell<BTreeMap<K, V>> }\n\
                 Fix:     use &mut self methods, Mutex/RwLock, or atomics."
            }
            Rule::CrLockOrder => {
                "CR003 — nested lock acquisition.\n\n\
                 Taking lock B while holding lock A deadlocks the moment any\n\
                 other thread takes them in the opposite order. Nested\n\
                 acquisitions need a documented global order.\n\n\
                 Fails:   let a = reg.lock(); let b = sinks.lock();\n\
                 Fix:     narrow the first guard's scope, or document the\n\
                 ordering with lint:allow(cr-lock-order): <order>."
            }
            Rule::CrRelaxedControl => {
                "CR004 — Relaxed atomic load steering control flow.\n\n\
                 A Relaxed load carries no happens-before edge: branching on it\n\
                 can observe arbitrarily stale state, so cross-thread control\n\
                 decisions (shutdown flags, queue gates) silently misfire.\n\n\
                 Fails:   if STOP.load(Ordering::Relaxed) { return; }\n\
                 Fix:     use Acquire (pairing with a Release store), or\n\
                 justify staleness-tolerance with\n\
                 lint:allow(cr-relaxed-control): <reason>."
            }
            Rule::RawSync => {
                "SY001 — raw std concurrency primitive.\n\n\
                 Locks, atomics, and threads reached directly through std are\n\
                 invisible to the cnnre-model exploration scheduler, so the\n\
                 interleavings they create are never model-checked. The shims\n\
                 in cnnre_model::sync / cnnre_model::thread are transparent\n\
                 std re-exports in normal builds and cost nothing.\n\n\
                 Fails:   use std::sync::Mutex;\n\
                 Fix:     use cnnre_model::sync::Mutex; (same API), or\n\
                 justify with lint:allow(raw-sync): <reason>."
            }
            Rule::StaleAllow => {
                "stale-allow — dead suppression.\n\n\
                 A lint:allow comment that no longer suppresses any finding is\n\
                 misleading documentation: it claims a violation exists where\n\
                 none does, and it hides future regressions at that site.\n\n\
                 Fails:   // lint:allow(panic): justified\n\
                          let x = compute();            // nothing to suppress\n\
                 Fix:     delete the directive."
            }
            Rule::AllowSyntax => {
                "allow-syntax — malformed suppression.\n\n\
                 Suppressions are part of the audit trail; an unknown rule name\n\
                 or missing reason silently suppresses nothing.\n\n\
                 Fails:   // lint:allow(panics)\n\
                 Fix:     // lint:allow(panic): <non-empty reason>."
            }
        }
    }

    /// Looks a rule up by its short name or `CTnnn`/`CRnnn` code.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.name() == name || r.code() == Some(name))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human explanation of the violation.
    pub message: String,
    /// Trimmed source line, for context.
    pub snippet: String,
}

/// Renders diagnostics as an aligned human-readable table.
#[must_use]
pub fn render_human(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let loc_w = diags
        .iter()
        .map(|d| d.file.len() + 1 + digits(d.line))
        .max()
        .unwrap_or(0);
    let rule_w = diags.iter().map(|d| d.rule.name().len()).max().unwrap_or(0);
    let mut out = String::new();
    for d in diags {
        let loc = format!("{}:{}", d.file, d.line);
        out.push_str(&format!(
            "{loc:<loc_w$}  {rule:<rule_w$}  {msg}\n",
            loc = loc,
            rule = d.rule.name(),
            msg = d.message,
        ));
        if !d.snippet.is_empty() {
            out.push_str(&format!("{:loc_w$}  {:rule_w$}  | {}\n", "", "", d.snippet));
        }
    }
    out
}

/// Renders diagnostics as a deterministic JSON report.
#[must_use]
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"cnnre-lint\",\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", d.rule.name()));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\", ", escape(&d.message)));
        out.push_str(&format!("\"snippet\": \"{}\"", escape(&d.snippet)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: Rule::Panic,
            file: "crates/nn/src/x.rs".into(),
            line: 7,
            message: "`.unwrap()` in library non-test code".into(),
            snippet: "let v = map.get(\"k\").unwrap();".into(),
        }]
    }

    #[test]
    fn json_escapes_quotes_and_is_parseable_shape() {
        let j = render_json(&sample(), 3);
        assert!(j.contains("\\\"k\\\""));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn human_table_includes_location_and_rule() {
        let h = render_human(&sample());
        assert!(h.contains("crates/nn/src/x.rs:7"));
        assert!(h.contains("panic"));
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
