//! Diagnostics and their renderings (human table, machine JSON).

use std::fmt;

/// The rule classes `cnnre-lint` enforces. Each maps to an invariant the
/// attack pipeline depends on (see DESIGN.md §8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now` / `SystemTime::now`) outside the
    /// observability crate's designated wall-clock modules.
    Wallclock,
    /// `HashMap` / `HashSet` on a deterministic export or solver path.
    HashIter,
    /// `unwrap` / `expect` / `panic!` / `todo!` / `unimplemented!` in
    /// library non-test code.
    Panic,
    /// Truncation-capable `as` casts in layer-geometry arithmetic.
    Cast,
    /// Non-`Relaxed` atomic ordering in `obs` without a justification
    /// comment.
    AtomicOrdering,
    /// `==` / `!=` applied to a float expression outside test code.
    FloatEq,
    /// Metric-name literal passed to an `obs` recording call that violates
    /// the documented schema (DESIGN.md §10).
    MetricName,
    /// Malformed or unknown `lint:allow` suppression directive.
    AllowSyntax,
}

impl Rule {
    /// All rules, in severity/report order.
    pub const ALL: [Rule; 8] = [
        Rule::Wallclock,
        Rule::HashIter,
        Rule::Panic,
        Rule::Cast,
        Rule::AtomicOrdering,
        Rule::FloatEq,
        Rule::MetricName,
        Rule::AllowSyntax,
    ];

    /// The short name used in reports and in `lint:allow(<name>)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::HashIter => "hash-iter",
            Rule::Panic => "panic",
            Rule::Cast => "cast",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::FloatEq => "float-eq",
            Rule::MetricName => "metric-name",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// One-line description for `--list-rules`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Wallclock => {
                "no Instant::now/SystemTime::now outside obs' wall-clock modules \
                 (deterministic --metrics snapshots)"
            }
            Rule::HashIter => {
                "no HashMap/HashSet in core/trace/accel deterministic paths; \
                 use BTreeMap/BTreeSet or justify that ordering never escapes"
            }
            Rule::Panic => {
                "no unwrap/expect/panic!/todo!/unimplemented! in library crates' \
                 non-test code"
            }
            Rule::Cast => {
                "no truncation-capable `as` casts in layer-geometry arithmetic \
                 (nn::geometry, core::structure, accel::layout)"
            }
            Rule::AtomicOrdering => {
                "non-Relaxed atomic orderings in obs must carry a justification \
                 comment on the same or preceding line"
            }
            Rule::FloatEq => {
                "no ==/!= on float expressions outside test code; use \
                 total_cmp, an epsilon compare, or justify exactness"
            }
            Rule::MetricName => {
                "string literals passed to obs::counter/gauge/histogram/\
                 series/span must match the metric schema: lowercase dotted \
                 path, known subsystem prefix, `_ns` only as `.wall_ns`"
            }
            Rule::AllowSyntax => {
                "lint:allow directives must name a known rule and give a \
                 non-empty reason"
            }
        }
    }

    /// Looks a rule up by its short name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human explanation of the violation.
    pub message: String,
    /// Trimmed source line, for context.
    pub snippet: String,
}

/// Renders diagnostics as an aligned human-readable table.
#[must_use]
pub fn render_human(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let loc_w = diags
        .iter()
        .map(|d| d.file.len() + 1 + digits(d.line))
        .max()
        .unwrap_or(0);
    let rule_w = diags.iter().map(|d| d.rule.name().len()).max().unwrap_or(0);
    let mut out = String::new();
    for d in diags {
        let loc = format!("{}:{}", d.file, d.line);
        out.push_str(&format!(
            "{loc:<loc_w$}  {rule:<rule_w$}  {msg}\n",
            loc = loc,
            rule = d.rule.name(),
            msg = d.message,
        ));
        if !d.snippet.is_empty() {
            out.push_str(&format!("{:loc_w$}  {:rule_w$}  | {}\n", "", "", d.snippet));
        }
    }
    out
}

/// Renders diagnostics as a deterministic JSON report.
#[must_use]
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"cnnre-lint\",\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", d.rule.name()));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\", ", escape(&d.message)));
        out.push_str(&format!("\"snippet\": \"{}\"", escape(&d.snippet)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: Rule::Panic,
            file: "crates/nn/src/x.rs".into(),
            line: 7,
            message: "`.unwrap()` in library non-test code".into(),
            snippet: "let v = map.get(\"k\").unwrap();".into(),
        }]
    }

    #[test]
    fn json_escapes_quotes_and_is_parseable_shape() {
        let j = render_json(&sample(), 3);
        assert!(j.contains("\\\"k\\\""));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn human_table_includes_location_and_rule() {
        let h = render_human(&sample());
        assert!(h.contains("crates/nn/src/x.rs:7"));
        assert!(h.contains("panic"));
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
