//! A lightweight item recognizer on top of the token tree.
//!
//! This is deliberately not a Rust parser: the taint engine only needs to
//! know (a) where each function's parameter list and body are, (b) which
//! struct fields are declared with which types, and (c) a handful of
//! keyword-anchored expression shapes (`if`/`while`/`for`/`match`
//! conditions, index groups, closure parameter lists) that the engine
//! resolves while walking the tree itself. Everything here degrades
//! gracefully on exotic syntax: an unrecognized item is simply skipped,
//! which for a linter means a missed finding, never a false one.

use crate::lexer::{TokKind, Token};
use crate::tree::{Delim, Tree};

/// Rust keywords: identifiers that can never be a variable binding. Used
/// to keep pattern/parameter extraction from treating `mut` or `ref` as a
/// name.
pub const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe",
];

// "use", "where", "while" are keywords too but never appear where the
// helpers below look for binding names; keeping the array at the common
// set keeps `is_binding_ident` cheap.

/// Whether `text` can be a local variable / field name for taint purposes:
/// a non-keyword identifier starting lowercase or `_`. Type and variant
/// names (uppercase) never bind values directly in the patterns we track.
#[must_use]
pub fn is_binding_ident(tok: &Token) -> bool {
    tok.kind == TokKind::Ident
        && !KEYWORDS.contains(&tok.text.as_str())
        && !matches!(tok.text.as_str(), "use" | "where" | "while")
        && tok
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receivers).
    pub name: String,
    /// Identifiers appearing in the declared type, in order.
    pub ty_idents: Vec<String>,
    /// 1-based line of the name token.
    pub line: u32,
}

/// One recognized `fn` with a body.
#[derive(Debug)]
pub struct FnDecl<'t> {
    /// Function name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// The children of the body's brace group.
    pub body: &'t [Tree],
}

/// Collects every `fn` with a body anywhere in `trees` (module level,
/// `impl` blocks, nested functions). Trait method *declarations* (no
/// body) are skipped.
#[must_use]
pub fn functions<'t>(trees: &'t [Tree], tokens: &[Token]) -> Vec<FnDecl<'t>> {
    let mut out = Vec::new();
    collect_functions(trees, tokens, &mut out);
    out
}

fn collect_functions<'t>(trees: &'t [Tree], tokens: &[Token], out: &mut Vec<FnDecl<'t>>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some((decl, body_idx)) = fn_at(trees, i, tokens) {
            // Recurse into the body once for nested fns, then skip past
            // it so the body group is not revisited at this level.
            collect_functions(decl.body, tokens, out);
            out.push(decl);
            i = body_idx + 1;
            continue;
        }
        if let Tree::Group { children, .. } = &trees[i] {
            collect_functions(children, tokens, out);
        }
        i += 1;
    }
}

/// Recognizes `fn name …(params)… { body }` starting at `trees[i]`.
/// Returns the declaration and the index of the body group at this level.
fn fn_at<'t>(trees: &'t [Tree], i: usize, tokens: &[Token]) -> Option<(FnDecl<'t>, usize)> {
    let kw = trees[i].leaf(tokens)?;
    if kw.text != "fn" {
        return None;
    }
    let name_tree = trees.get(i + 1)?;
    let name_tok = match name_tree {
        Tree::Leaf(t) if tokens[*t].kind == TokKind::Ident => *t,
        _ => return None,
    };
    // Scan forward for the parameter paren group, then the body brace
    // group, giving up at a `;` (trait declaration) at this level.
    let mut params: Option<&Tree> = None;
    let mut body: Option<(&'t [Tree], usize)> = None;
    // Angle depth guards against `fn f<F: Fn(u32)>(g: F)`: the paren group
    // inside the generics must not be mistaken for the parameter list.
    let mut angle = 0i32;
    for (off, t) in trees[i + 2..].iter().enumerate() {
        match t {
            Tree::Leaf(l) if tokens[*l].text == ";" => break,
            Tree::Leaf(l) if tokens[*l].text == "fn" => break,
            Tree::Leaf(l) if params.is_none() && tokens[*l].text == "<" => angle += 1,
            Tree::Leaf(l) if params.is_none() && tokens[*l].text == ">" => angle -= 1,
            Tree::Group {
                delim: Delim::Paren,
                ..
            } if params.is_none() && angle == 0 => {
                params = Some(t);
            }
            Tree::Group {
                delim: Delim::Brace,
                children,
                ..
            } if params.is_some() => {
                body = Some((children.as_slice(), i + 2 + off));
                break;
            }
            _ => {}
        }
    }
    let (params, (body, body_idx)) = (params?, body?);
    let Tree::Group { children, .. } = params else {
        return None;
    };
    Some((
        FnDecl {
            name: tokens[name_tok].text.clone(),
            name_tok,
            params: parse_params(children, tokens),
            body,
        },
        body_idx,
    ))
}

/// Splits a parameter-list group on top-level commas and extracts each
/// parameter's binding name and type identifiers.
fn parse_params(children: &[Tree], tokens: &[Token]) -> Vec<Param> {
    let mut out = Vec::new();
    for piece in split_commas(children, tokens) {
        if piece.is_empty() {
            continue;
        }
        // `self` / `&self` / `&mut self` receiver.
        let flat: Vec<usize> = crate::tree::flatten(piece);
        if let Some(&self_tok) = flat
            .iter()
            .find(|&&t| tokens[t].text == "self" && tokens[t].kind == TokKind::Ident)
        {
            // Only a receiver when it appears before any `:`.
            let colon = piece
                .iter()
                .position(|t| t.leaf(tokens).is_some_and(|l| l.text == ":"));
            let self_pos = piece
                .iter()
                .position(|t| matches!(t, Tree::Leaf(i) if *i == self_tok));
            if colon.is_none() || self_pos < colon {
                out.push(Param {
                    name: "self".to_owned(),
                    ty_idents: vec!["Self".to_owned()],
                    line: tokens[self_tok].line,
                });
                continue;
            }
        }
        // `name: Type` (possibly `mut name: Type` or a pattern; we take
        // the first binding ident before the colon as the name).
        let colon = piece
            .iter()
            .position(|t| t.leaf(tokens).is_some_and(|l| l.text == ":"));
        let Some(colon) = colon else { continue };
        let name = crate::tree::flatten(&piece[..colon])
            .into_iter()
            .find(|&t| is_binding_ident(&tokens[t]));
        let Some(name_tok) = name else { continue };
        let ty_idents = crate::tree::flatten(&piece[colon + 1..])
            .into_iter()
            .filter(|&t| tokens[t].kind == TokKind::Ident)
            .map(|t| tokens[t].text.clone())
            .collect();
        out.push(Param {
            name: tokens[name_tok].text.clone(),
            ty_idents,
            line: tokens[name_tok].line,
        });
    }
    out
}

/// Splits a tree slice on top-level commas.
#[must_use]
pub fn split_commas<'t>(children: &'t [Tree], tokens: &[Token]) -> Vec<&'t [Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut angle_depth = 0i32;
    for (i, t) in children.iter().enumerate() {
        if let Some(l) = t.leaf(tokens) {
            match l.text.as_str() {
                "<" => angle_depth += 1,
                ">" => angle_depth -= 1,
                "," if angle_depth <= 0 => {
                    out.push(&children[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    out.push(&children[start..]);
    out
}

/// A struct field declared with a named type.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Identifiers appearing in the declared type.
    pub ty_idents: Vec<String>,
}

/// Collects `struct Name { field: Type, … }` fields anywhere in the file.
/// Tuple structs and enums are skipped — the taint engine seeds on named
/// fields only.
#[must_use]
pub fn struct_fields(trees: &[Tree], tokens: &[Token]) -> Vec<Field> {
    let mut out = Vec::new();
    collect_struct_fields(trees, tokens, &mut out);
    out
}

fn collect_struct_fields(trees: &[Tree], tokens: &[Token], out: &mut Vec<Field>) {
    let mut i = 0;
    while i < trees.len() {
        let is_struct = trees[i].leaf(tokens).is_some_and(|l| l.text == "struct");
        if is_struct {
            // struct Name [<generics>] { fields } — find the brace group
            // before any `;` (tuple/unit structs end in `;`).
            let mut j = i + 1;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Leaf(l) if tokens[*l].text == ";" => break,
                    Tree::Group {
                        delim: Delim::Brace,
                        children,
                        ..
                    } => {
                        fields_of_group(children, tokens, out);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        } else if let Tree::Group { children, .. } = &trees[i] {
            collect_struct_fields(children, tokens, out);
        }
        i += 1;
    }
}

fn fields_of_group(children: &[Tree], tokens: &[Token], out: &mut Vec<Field>) {
    for piece in split_commas(children, tokens) {
        let colon = piece
            .iter()
            .position(|t| t.leaf(tokens).is_some_and(|l| l.text == ":"));
        let Some(colon) = colon else { continue };
        // Name: last binding ident before the colon (skips `pub`, `pub(crate)`).
        let name = crate::tree::flatten(&piece[..colon])
            .into_iter()
            .rfind(|&t| is_binding_ident(&tokens[t]));
        let Some(name_tok) = name else { continue };
        let ty_idents = crate::tree::flatten(&piece[colon + 1..])
            .into_iter()
            .filter(|&t| tokens[t].kind == TokKind::Ident)
            .map(|t| tokens[t].text.clone())
            .collect();
        out.push(Field {
            name: tokens[name_tok].text.clone(),
            ty_idents,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    /// `(param name, type idents)` as flattened by the recognizer.
    type ParamView = (String, Vec<String>);

    fn fns(src: &str) -> Vec<(String, Vec<ParamView>)> {
        let toks = lex(src);
        let trees = build(&toks);
        functions(&trees, &toks)
            .into_iter()
            .map(|f| {
                (
                    f.name,
                    f.params
                        .into_iter()
                        .map(|p| (p.name, p.ty_idents))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn plain_fn_with_typed_params() {
        let fs = fns("fn f(a: u32, b: &Network) -> u64 { 0 }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].0, "f");
        assert_eq!(fs[0].1[0], ("a".into(), vec!["u32".into()]));
        assert_eq!(fs[0].1[1], ("b".into(), vec!["Network".into()]));
    }

    #[test]
    fn methods_inside_impl_blocks_are_found() {
        let fs = fns("impl Runner { fn go(&mut self, s: &Stage) {} fn other(&self) {} }");
        let names: Vec<&str> = fs.iter().map(|f| f.0.as_str()).collect();
        assert!(names.contains(&"go") && names.contains(&"other"));
        let go = fs.iter().find(|f| f.0 == "go").expect("go found");
        assert_eq!(go.1[0].0, "self");
        assert_eq!(go.1[1], ("s".into(), vec!["Stage".into()]));
    }

    #[test]
    fn generic_fns_and_where_clauses() {
        let fs =
            fns("fn g<R: Rng + ?Sized>(trace: &Trace, rng: &mut R) -> Trace where R: Sized { t }");
        assert_eq!(fs[0].1[0], ("trace".into(), vec!["Trace".into()]));
        assert_eq!(fs[0].1[1].0, "rng");
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let fs = fns("trait T { fn sig(x: u32) -> u32; }");
        assert!(fs.is_empty());
    }

    #[test]
    fn nested_fns_are_collected() {
        let fs = fns("fn outer() { fn inner(q: Secret) {} }");
        let names: Vec<&str> = fs.iter().map(|f| f.0.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn struct_fields_capture_names_and_types() {
        let toks = lex("pub struct Runner<'a> { net: &'a Network, pub acts: Option<&'a [Tensor3]>, cycle: u64 }");
        let trees = build(&toks);
        let fields = struct_fields(&trees, &toks);
        let net = fields.iter().find(|f| f.name == "net").expect("net field");
        assert!(net.ty_idents.contains(&"Network".to_owned()));
        let acts = fields
            .iter()
            .find(|f| f.name == "acts")
            .expect("acts field");
        assert!(acts.ty_idents.contains(&"Tensor3".to_owned()));
    }

    #[test]
    fn tuple_structs_yield_no_fields() {
        let toks = lex("pub struct Log10Size(pub f64);");
        let trees = build(&toks);
        assert!(struct_fields(&trees, &toks).is_empty());
    }
}
