//! A hand-written Rust surface lexer.
//!
//! The analyzer never needs a full parse — every rule is expressible over a
//! faithful token stream — but the stream *must* be faithful, or a string
//! literal containing `unwrap()` (or a comment containing `HashMap`) would
//! produce phantom diagnostics. The tricky cases this lexer handles
//! correctly:
//!
//! * raw strings `r"…"` / `r#"…"#` / `r##"…"##` (any hash depth), plus the
//!   byte variants `br"…"` / `br#"…"#`;
//! * raw identifiers `r#match` (which share a prefix with raw strings);
//! * nested block comments `/* outer /* inner */ still a comment */`;
//! * `'a` lifetimes vs `'x'` char literals (including `'_'`, escapes like
//!   `'\''`, and non-ASCII chars);
//! * numeric literals with type suffixes (`1_024u64`, `2.5e-3f32`) without
//!   swallowing the `..` of a range expression.
//!
//! Comments are kept as tokens: suppression directives
//! (`// lint:allow(rule): reason`) and atomic-ordering justifications live
//! in comments, so rules need to see them with accurate line numbers.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Character literal `'x'` or byte literal `b'x'`.
    Char,
    /// String literal (cooked or raw, byte or not).
    Str,
    /// Numeric literal, including any suffix.
    Num,
    /// A single punctuation character (`.`, `:`, `!`, `(`, …).
    Punct,
    /// `// …` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, possibly nested, possibly multi-line.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// consume to end-of-file, which is the most useful behavior for a linter
/// (the compiler will produce the real error).
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        // `src` is only held so the struct is self-describing in debuggers.
        let _ = self.src;
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    self.line_comment();
                    self.emit(TokKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.emit(TokKind::BlockComment, start, line);
                }
                'r' | 'b' if self.raw_or_byte_string() => {
                    self.emit(TokKind::Str, start, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // b
                    self.char_literal();
                    self.emit(TokKind::Char, start, line);
                }
                '"' => {
                    self.cooked_string();
                    self.emit(TokKind::Str, start, line);
                }
                '\'' => {
                    let kind = self.lifetime_or_char();
                    self.emit(kind, start, line);
                }
                c if c.is_alphabetic() || c == '_' => {
                    self.ident();
                    self.emit(TokKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.emit(TokKind::Num, start, line);
                }
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
    }

    /// Tries to consume a raw string (`r"…"`, `r#"…"#`), byte string
    /// (`b"…"`), or raw byte string (`br#"…"#`) starting at the current
    /// position. Returns `false` (consuming nothing) when the lookahead is
    /// actually an identifier (`radius`), a raw identifier (`r#match`), or a
    /// byte char (`b'x'`).
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 1; // past the leading r or b
        let raw = match self.peek(0) {
            Some('r') => true,
            Some('b') => {
                if self.peek(1) == Some('r') {
                    ahead = 2;
                    true
                } else if self.peek(1) == Some('"') {
                    // b"…": cooked byte string
                    self.bump(); // b
                    self.cooked_string();
                    return true;
                } else {
                    return false;
                }
            }
            _ => return false,
        };
        if raw {
            let mut hashes = 0usize;
            while self.peek(ahead + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(ahead + hashes) != Some('"') {
                // `r#match` raw identifier or plain ident starting with r/br.
                return false;
            }
            for _ in 0..ahead + hashes + 1 {
                self.bump();
            }
            // Scan for `"` followed by `hashes` hash marks.
            while self.peek(0).is_some() {
                if self.peek(0) == Some('"') {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes + 1 {
                            self.bump();
                        }
                        return true;
                    }
                }
                self.bump();
            }
            return true; // unterminated raw string: consumed to EOF
        }
        false
    }

    fn cooked_string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, may be " or \
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// Disambiguates `'a` / `'static` (lifetime) from `'x'` / `'\n'` /
    /// `'_'` (char literal). After the quote: an escape is always a char; an
    /// identifier char followed by a closing quote is a char; an identifier
    /// char not followed by a closing quote is a lifetime; anything else
    /// (e.g. `'('`) is a char.
    fn lifetime_or_char(&mut self) -> TokKind {
        match self.peek(1) {
            Some('\\') => {
                self.char_literal();
                TokKind::Char
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(2) == Some('\'') {
                    self.char_literal();
                    TokKind::Char
                } else {
                    self.bump(); // '
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    TokKind::Lifetime
                }
            }
            _ => {
                self.char_literal();
                TokKind::Char
            }
        }
    }

    fn ident(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Numeric literal including suffix (`1u64`, `0xFFu8`, `1.5e-3f32`).
    /// Consumes a `.` only when followed by a digit, so `0..n` and
    /// `1.max(x)` tokenize as `0` `.` `.` `n` and `1` `.` `max` `(` `x` `)`.
    fn number(&mut self) {
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // Exponent sign: 1e-3 / 2.5E+7.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump(); // e
                    self.bump(); // sign
                    continue;
                }
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // `unwrap` inside a raw string must not surface as an Ident.
        let toks = kinds(r####"let s = r#"x.unwrap()"#;"####);
        assert_eq!(idents(r####"let s = r#"x.unwrap()"#;"####), ["let", "s"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        let src = r#####"r##"inner "quote"# still"## ; done"#####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.ends_with("\"##"));
        assert_eq!(idents(src), ["done"]);
    }

    #[test]
    fn raw_byte_strings_and_byte_strings() {
        assert_eq!(kinds(r###"br#"HashMap"#"###)[0].0, TokKind::Str);
        assert_eq!(kinds(r#"b"HashMap""#)[0].0, TokKind::Str);
        assert_eq!(kinds("b'x'")[0].0, TokKind::Char);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert_eq!(idents("r#match = r#fn"), ["r", "match", "r", "fn"]);
        // (split at the #, which is fine for rule purposes — what matters
        // is that nothing is mistaken for a raw string and swallowed.)
        assert_eq!(idents("radius * brightness"), ["radius", "brightness"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::BlockComment && t.contains("inner")));
    }

    #[test]
    fn doubly_nested_block_comments() {
        let src = "x /* 1 /* 2 /* 3 */ 2 */ 1 */ y";
        assert_eq!(idents(src), ["x", "y"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_to_eof() {
        assert_eq!(idents("a /* never closed\nmore"), ["a"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(chars, ["'x'", "'_'"]);
    }

    #[test]
    fn static_lifetime_and_escaped_chars() {
        let toks = kinds(r"&'static str; '\''; '\n'; '\u{1F600}'");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            1
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn anonymous_lifetime_is_a_lifetime() {
        let toks = kinds("&'_ str");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'_"));
    }

    #[test]
    fn comments_inside_strings_are_strings() {
        let src = r#"let s = "// not a comment /* nor this */";"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .all(|(k, _)| !matches!(k, TokKind::LineComment | TokKind::BlockComment)));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn strings_with_escaped_quotes() {
        let src = r#""she said \"hi\"" trailing"#;
        assert_eq!(idents(src), ["trailing"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("0..10");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, ["0", "10"]);
        assert_eq!(idents("1.max(2)"), ["max"]);
        let toks = kinds("2.5e-3f32 + 1_024u64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, ["2.5e-3f32", "1_024u64"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\n/* block\ncomment */\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").map(|t| t.line);
        assert_eq!(b, Some(6));
    }

    #[test]
    fn line_comment_keeps_directive_text() {
        let toks = lex("x(); // lint:allow(panic): startup only");
        let c = toks.iter().find(|t| t.kind == TokKind::LineComment);
        assert!(c.is_some_and(|t| t.text.contains("lint:allow(panic)")));
    }
}
