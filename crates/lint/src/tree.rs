//! Token trees: the lexer's flat stream grouped by matched delimiters.
//!
//! The surface rules ([`crate::rules`]) work on the flat stream, but the
//! taint-dataflow engine ([`crate::taint`]) needs *structure*: where a
//! function body starts and ends, which tokens form an `if` condition,
//! whether a `[`…`]` group sits in index position. A token tree gives
//! exactly that with no grammar: every `(`/`[`/`{` opens a group holding
//! its children, everything else is a leaf. Comments are dropped here —
//! they carry directives, not structure — so leaf indices always refer to
//! code tokens of the underlying [`crate::source::SourceFile`].

use crate::lexer::{TokKind, Token};

/// Which delimiter pair a [`Tree::Group`] was built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    fn open(c: &str) -> Option<Delim> {
        match c {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn closes(self, c: &str) -> bool {
        matches!(
            (self, c),
            (Delim::Paren, ")") | (Delim::Bracket, "]") | (Delim::Brace, "}")
        )
    }
}

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A non-delimiter code token; the index points into
    /// `SourceFile::tokens`.
    Leaf(usize),
    /// A matched delimiter group.
    Group {
        /// Delimiter kind.
        delim: Delim,
        /// Token index of the opening delimiter.
        open: usize,
        /// Children in source order.
        children: Vec<Tree>,
    },
}

impl Tree {
    /// The 1-based source line this node starts on.
    #[must_use]
    pub fn line(&self, tokens: &[Token]) -> u32 {
        match self {
            Tree::Leaf(i) | Tree::Group { open: i, .. } => tokens[*i].line,
        }
    }

    /// The leaf's token, if this is a leaf.
    #[must_use]
    pub fn leaf<'t>(&self, tokens: &'t [Token]) -> Option<&'t Token> {
        match self {
            Tree::Leaf(i) => Some(&tokens[*i]),
            Tree::Group { .. } => None,
        }
    }

    /// Whether this is a group with the given delimiter.
    #[must_use]
    pub fn is_group(&self, d: Delim) -> bool {
        matches!(self, Tree::Group { delim, .. } if *delim == d)
    }

    /// Appends every leaf token index under this node, in source order.
    pub fn flatten_into(&self, out: &mut Vec<usize>) {
        match self {
            Tree::Leaf(i) => out.push(*i),
            Tree::Group { children, .. } => {
                for c in children {
                    c.flatten_into(out);
                }
            }
        }
    }
}

/// Appends every leaf token index under `trees`, in source order.
#[must_use]
pub fn flatten(trees: &[Tree]) -> Vec<usize> {
    let mut out = Vec::new();
    for t in trees {
        t.flatten_into(&mut out);
    }
    out
}

/// Builds the token tree for a file's code tokens (comments excluded).
///
/// Never fails: a stray closing delimiter becomes a leaf, an unterminated
/// group closes at end-of-file — the compiler reports the real error, the
/// linter just keeps as much structure as it can.
#[must_use]
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    /// One open group on the build stack: its delimiter + opening token
    /// index (`None` for the top level) and the nodes collected so far.
    type Open = (Option<(Delim, usize)>, Vec<Tree>);
    // Stack of open groups; the bottom "group" collects top-level nodes.
    let mut stack: Vec<Open> = vec![(None, Vec::new())];
    for (i, tok) in tokens.iter().enumerate() {
        if tok.is_comment() {
            continue;
        }
        let text = tok.text.as_str();
        if tok.kind == TokKind::Punct {
            if let Some(d) = Delim::open(text) {
                stack.push((Some((d, i)), Vec::new()));
                continue;
            }
            if matches!(text, ")" | "]" | "}") {
                // Close the innermost group if it matches; otherwise treat
                // the delimiter as a stray leaf (unbalanced source).
                let matches_top = stack
                    .last()
                    .and_then(|(h, _)| *h)
                    .is_some_and(|(d, _)| d.closes(text));
                if matches_top {
                    // The bottom entry has header None, so the stack still
                    // holds at least one entry after this pop.
                    if let Some((Some((delim, open)), children)) = stack.pop() {
                        if let Some((_, parent)) = stack.last_mut() {
                            parent.push(Tree::Group {
                                delim,
                                open,
                                children,
                            });
                        }
                    }
                    continue;
                }
            }
        }
        if let Some((_, top)) = stack.last_mut() {
            top.push(Tree::Leaf(i));
        }
    }
    // Unterminated groups: close them all at EOF, preserving children.
    while stack.len() > 1 {
        if let Some((Some((delim, open)), children)) = stack.pop() {
            if let Some((_, parent)) = stack.last_mut() {
                parent.push(Tree::Group {
                    delim,
                    open,
                    children,
                });
            }
        }
    }
    stack.pop().map(|(_, top)| top).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn shape(src: &str) -> Vec<Tree> {
        build(&lex(src))
    }

    #[test]
    fn groups_nest_and_leaves_stay_in_order() {
        let toks = lex("fn f(a: u32) { g(a[0]); }");
        let trees = build(&toks);
        // fn, f, (params), {body}
        assert_eq!(trees.len(), 4);
        assert!(trees[2].is_group(Delim::Paren));
        assert!(trees[3].is_group(Delim::Brace));
        let Tree::Group { children, .. } = &trees[3] else {
            panic!("body is a group")
        };
        // g ( a [0] ) ; -> g, paren-group, ;
        assert_eq!(children.len(), 3);
        assert!(children[1].is_group(Delim::Paren));
    }

    #[test]
    fn flatten_recovers_every_code_token() {
        let toks = lex("a(b[c{d}]) e // comment\n f");
        let trees = build(&toks);
        let flat = flatten(&trees);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        // Delimiters themselves are not leaves; everything else survives.
        let texts: Vec<&str> = flat.iter().map(|&i| toks[i].text.as_str()).collect();
        assert_eq!(texts, ["a", "b", "c", "d", "e", "f"]);
        assert!(flat.len() <= code.len());
    }

    #[test]
    fn unbalanced_sources_do_not_lose_tokens() {
        let trees = shape("fn f( { x }");
        assert!(!trees.is_empty());
        let trees = shape(") } x ]");
        let toks = lex(") } x ]");
        assert!(flatten(&trees).iter().any(|&i| toks[i].text == "x"));
    }

    #[test]
    fn comments_are_not_part_of_the_tree() {
        let toks = lex("a /* x */ b // y");
        let trees = build(&toks);
        assert_eq!(trees.len(), 2);
    }
}
