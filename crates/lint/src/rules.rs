//! The rule passes. Each pass walks one [`SourceFile`]'s token stream and
//! reports [`Diagnostic`]s; path targeting decides which files a rule
//! applies to, and `// lint:allow(<rule>): <reason>` directives suppress
//! individual findings (auditable — a directive with no reason is itself a
//! violation, see [`check_allow_directives`]).

use crate::concurrency;
use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;
use crate::taint;
use std::collections::BTreeSet;

/// Wall-clock reads are permitted only here: `obs::span` measures wall
/// time by design (and tags it `wall_ns` so deterministic exports drop
/// it), the profile recorder timestamps events against one process epoch,
/// and the bench harness exists to measure wall time.
const WALLCLOCK_ALLOWED: [&str; 3] = [
    "crates/obs/src/span.rs",
    "crates/obs/src/bench.rs",
    "crates/obs/src/profile.rs",
];

/// Obs recording calls whose first argument is a full metric name subject
/// to the DESIGN.md §10 schema. `count` is `obs::profile::count`, the
/// timeline-sample emitter.
const METRIC_CALLS: [&str; 5] = ["counter", "gauge", "histogram", "series", "count"];

/// Obs span constructors whose first argument is a *path fragment*: the
/// exported metric becomes `span.<path>.cycles` / `.calls` / `.wall_ns`,
/// so the fragment needs well-formed segments but no subsystem prefix.
const SPAN_CALLS: [&str; 2] = ["span", "span_labelled"];

/// Known subsystem prefixes (first segment of a full metric name). Mirror
/// of `cnnre_obs::catalog::KNOWN_PREFIXES` — the lint crate is
/// zero-dependency, so the list is duplicated and the root
/// `tests/metric_catalog.rs` drift test keeps the two in lock-step.
pub const METRIC_PREFIXES: [&str; 16] = [
    "accel", "trace", "solver", "oracle", "weights", "attack", "train", "bench", "span", "profile",
    "fig4", "fig5", "events", "viz", "exec", "http",
];

/// Crates whose `src/` trees are deterministic attack paths: their exports
/// (`--metrics` snapshots, candidate enumerations, trace segmentations)
/// must not depend on hash-map iteration order.
const HASH_ITER_SCOPE: [&str; 3] = ["crates/core/src/", "crates/trace/src/", "crates/accel/src/"];

/// Library crates that must not panic in non-test code. The bench harness
/// (`crates/bench`) and the CLI (`src/`) are binaries and may exit loudly.
const PANIC_SCOPE: [&str; 8] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/accel/src/",
    "crates/trace/src/",
    "crates/core/src/",
    "crates/obs/src/",
    "crates/lint/src/",
    "crates/audit/src/",
];

/// Modules whose integer arithmetic *is* the Equations (1)–(8) candidate
/// search space; a silently truncating cast here corrupts recovery.
const CAST_SCOPE: [&str; 3] = [
    "crates/nn/src/geometry.rs",
    "crates/core/src/structure/",
    "crates/accel/src/layout.rs",
];

/// Integer targets that can truncate a 64-bit (or float) source.
const NARROWING_INT: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// All integer targets (for the float-rounding-result check, where even a
/// 64-bit target truncates the fractional part or saturates).
const ANY_INT: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Float methods whose result is routinely cast back to an integer; such
/// casts silently saturate/truncate and must be justified.
const FLOAT_ROUNDERS: [&str; 5] = ["ceil", "floor", "round", "sqrt", "trunc"];

/// Non-`Relaxed` atomic orderings: fine when needed, but `obs` promises
/// "one relaxed load when disabled", so stronger orderings must explain
/// themselves.
const STRONG_ORDERINGS: [&str; 4] = ["SeqCst", "Acquire", "Release", "AcqRel"];

/// Test-tree paths (scanned only with `--include-tests`) where hash-map
/// iteration still matters: the root integration/golden tests and the
/// tests of the deterministic-path crates.
const HASH_ITER_TEST_SCOPE: [&str; 4] = [
    "tests/",
    "crates/core/tests/",
    "crates/trace/tests/",
    "crates/accel/tests/",
];

/// Files whose implementations must be constant-trace: the defenses (their
/// whole point is removing secret-dependent behavior) and the accelerator
/// engine/schedule/layout (the simulated victim, where secret-dependent
/// behavior is the *subject* and every instance must be a documented,
/// intentional leak).
const CT_SCOPE: [&str; 4] = [
    "crates/trace/src/defense.rs",
    "crates/accel/src/engine.rs",
    "crates/accel/src/schedule.rs",
    "crates/accel/src/layout.rs",
];

/// Crates whose `src/` trees ROADMAP item 1 will turn into `Send + Sync`
/// parallel engines: mutable globals and interior mutability there are
/// refactor blockers today (CR001/CR002).
const CR_STATE_SCOPE: [&str; 3] = ["crates/core/src/", "crates/trace/src/", "crates/accel/src/"];

/// Crates that hold locks (`obs` registries, the bench harness) or will
/// (the parallel solver): nested acquisitions need a documented order
/// (CR003).
const LOCK_SCOPE: [&str; 3] = ["crates/obs/src/", "crates/core/src/", "crates/bench/src/"];

/// Crates whose atomics steer cross-thread control flow (CR004).
const RELAXED_SCOPE: [&str; 2] = ["crates/obs/src/", "crates/core/src/"];

/// Crates whose concurrency must stay explorable by the model checker:
/// locks, atomics, and threads there go through the `cnnre_model` shims,
/// never raw `std::sync`/`std::thread` (SY001). `crates/model` itself is
/// exempt — wrapping `std` is its job.
const SYNC_SHIM_SCOPE: [&str; 4] = [
    "crates/core/src/",
    "crates/accel/src/",
    "crates/trace/src/",
    "crates/obs/src/",
];

/// Whether `rel_path` lives in a test/bench/example tree rather than a
/// `src/` tree. Such files are only reached via `--include-tests` and get
/// the relaxed rule set.
#[must_use]
pub fn is_test_tree(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

/// Runs every applicable rule pass over `file`.
///
/// Files under `tests/`, `benches/`, or `examples/` get the relaxed set:
/// the determinism rules (wallclock, hash-iter) and directive validation
/// stay on — a golden test that reads the clock or iterates a `HashMap`
/// flakes exactly like library code — while the panic/cast/atomic/float-eq
/// rules are off, because `unwrap()` and exact float asserts are the test
/// idiom, not a defect.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Ctx::default();
    if file.whole_file_excluded {
        return out.diags;
    }
    let code = file.code_indices();
    check_wallclock(file, &code, &mut out);
    check_hash_iter(file, &code, &mut out);
    if !is_test_tree(&file.rel_path) {
        check_panic(file, &code, &mut out);
        check_cast(file, &code, &mut out);
        check_atomic_ordering(file, &code, &mut out);
        check_float_eq(file, &code, &mut out);
        check_metric_name(file, &code, &mut out);
        check_constant_trace(file, &mut out);
        check_relaxed_control(file, &mut out);
        check_mutable_state(file, &mut out);
        check_lock_order(file, &mut out);
        check_raw_sync(file, &mut out);
    }
    check_allow_directives(file, &mut out.diags);
    check_stale_allows(file, &out.used, &out.used_module, &mut out.diags);
    out.diags
}

/// Accumulates one file's diagnostics plus which suppression directives
/// actually fired — the input to the stale-allow post-pass.
#[derive(Default)]
struct Ctx {
    diags: Vec<Diagnostic>,
    /// `(directive line, directive rule text)` of used line allows.
    used: BTreeSet<(u32, String)>,
    /// Rule text of used `lint:allow-module` directives.
    used_module: BTreeSet<String>,
}

fn push(out: &mut Ctx, file: &SourceFile, rule: Rule, line: u32, message: String) {
    // A directive may name the rule (`ct-branch`) or its code (`CT001`).
    let line_allow = file
        .allow_for(rule.name(), line)
        .or_else(|| rule.code().and_then(|c| file.allow_for(c, line)));
    if let Some(d) = line_allow {
        out.used.insert((d.line, d.rule.clone()));
        return;
    }
    let module_allow = file
        .module_allow_for(rule.name())
        .or_else(|| rule.code().and_then(|c| file.module_allow_for(c)));
    if let Some(d) = module_allow {
        out.used_module.insert(d.rule.clone());
        return;
    }
    out.diags.push(Diagnostic {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

/// Whether the token at `idx` is exempt as test code. In test-tree files
/// every item is test code by construction — honoring the in-file
/// `#[test]`/`#[cfg(test)]` exemption there would blank the whole file —
/// so the rules that still run under the relaxed set ignore it.
fn exempt(file: &SourceFile, idx: usize) -> bool {
    !is_test_tree(&file.rel_path) && file.in_test_code(idx)
}

fn check_wallclock(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    if WALLCLOCK_ALLOWED.iter().any(|p| file.rel_path == *p) {
        return;
    }
    for w in windows4(code) {
        let [a, b, c, d] = w;
        let ty = &file.tokens[a].text;
        if (ty == "Instant" || ty == "SystemTime")
            && file.tokens[b].text == ":"
            && file.tokens[c].text == ":"
            && file.tokens[d].text == "now"
            && !exempt(file, a)
        {
            push(
                out,
                file,
                Rule::Wallclock,
                file.tokens[a].line,
                format!(
                    "`{ty}::now` outside obs' wall-clock modules breaks byte-identical \
                     --metrics snapshots; route timing through cnnre_obs::span"
                ),
            );
        }
    }
}

fn check_hash_iter(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    let scope: &[&str] = if is_test_tree(&file.rel_path) {
        &HASH_ITER_TEST_SCOPE
    } else {
        &HASH_ITER_SCOPE
    };
    if !in_scope(&file.rel_path, scope) {
        return;
    }
    for &i in code {
        let t = &file.tokens[i];
        if (t.text == "HashMap" || t.text == "HashSet") && !exempt(file, i) {
            push(
                out,
                file,
                Rule::HashIter,
                t.line,
                format!(
                    "`{}` on a deterministic path: iteration order varies per process; \
                     use BTreeMap/BTreeSet, sort before iterating, or justify that \
                     ordering never escapes",
                    t.text
                ),
            );
        }
    }
}

fn check_panic(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    if !in_scope(&file.rel_path, &PANIC_SCOPE) {
        return;
    }
    for w in windows3(code) {
        let [a, b, c] = w;
        let name = &file.tokens[b].text;
        // `.unwrap(` / `.expect(` — method calls only, so local fns named
        // e.g. `expect_header(...)` don't fire.
        if file.tokens[a].text == "."
            && (name == "unwrap" || name == "expect")
            && file.tokens[c].text == "("
            && !file.in_test_code(b)
        {
            push(
                out,
                file,
                Rule::Panic,
                file.tokens[b].line,
                format!(
                    "`.{name}()` in library non-test code can abort the pipeline \
                     mid-attack; return a Result, provide a fallback, or justify"
                ),
            );
        }
        // Macro invocations: `panic!(` / `todo!{` / `unimplemented![`.
        let name = &file.tokens[a].text;
        if (name == "panic" || name == "todo" || name == "unimplemented")
            && file.tokens[b].text == "!"
            && matches!(file.tokens[c].text.as_str(), "(" | "[" | "{")
            && !file.in_test_code(a)
        {
            push(
                out,
                file,
                Rule::Panic,
                file.tokens[a].line,
                format!(
                    "`{name}!` in library non-test code can abort the pipeline \
                     mid-attack; return a Result or justify"
                ),
            );
        }
    }
}

fn check_cast(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    if !in_scope(&file.rel_path, &CAST_SCOPE) {
        return;
    }
    for (ci, &i) in code.iter().enumerate() {
        if file.tokens[i].text != "as" || file.in_test_code(i) {
            continue;
        }
        let Some(&target_idx) = code.get(ci + 1) else {
            continue;
        };
        let target = file.tokens[target_idx].text.as_str();
        let narrowing = NARROWING_INT.contains(&target);
        let from_float_rounder =
            ANY_INT.contains(&target) && cast_source_is_float_rounder(file, code, ci);
        if narrowing || from_float_rounder {
            let why = if from_float_rounder {
                "a float-rounding result cast to an integer silently saturates"
            } else {
                "truncation here corrupts the Eq. (1)-(8) candidate search space"
            };
            push(
                out,
                file,
                Rule::Cast,
                file.tokens[i].line,
                format!(
                    "narrowing `as {target}` in layer-geometry arithmetic: {why}; \
                     use try_from with explicit handling or justify the bound"
                ),
            );
        }
    }
}

/// Whether the expression immediately before the `as` at code-index `ci`
/// ends in a call to one of [`FLOAT_ROUNDERS`], i.e. `(...).ceil() as u64`.
fn cast_source_is_float_rounder(file: &SourceFile, code: &[usize], ci: usize) -> bool {
    // Pattern, scanning left from `as`: `)` `(` ident — an empty-arg method
    // call. (All of FLOAT_ROUNDERS take no arguments.)
    if ci < 3 {
        return false;
    }
    let close = &file.tokens[code[ci - 1]].text;
    let open = &file.tokens[code[ci - 2]].text;
    let name = &file.tokens[code[ci - 3]].text;
    close == ")" && open == "(" && FLOAT_ROUNDERS.contains(&name.as_str())
}

fn check_atomic_ordering(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    if !file.rel_path.starts_with("crates/obs/src/") {
        return;
    }
    for &i in code {
        let t = &file.tokens[i];
        if STRONG_ORDERINGS.contains(&t.text.as_str())
            && !file.in_test_code(i)
            && !file.has_adjacent_comment(t.line)
        {
            push(
                out,
                file,
                Rule::AtomicOrdering,
                t.line,
                format!(
                    "`Ordering::{}` without a justification comment; obs promises \
                     one Relaxed load on the disabled fast path — explain why a \
                     stronger ordering is required here",
                    t.text
                ),
            );
        }
    }
}

/// Flags `==` / `!=` where either operand is visibly a float: a float
/// literal, an `as f32`/`as f64` cast result, or an `f32::`/`f64::`
/// associated constant. Exact float equality silently diverges between
/// code paths that accumulate rounding differently (GEMM tiling orders,
/// fixed-point round trips); comparisons should go through `total_cmp` or
/// an explicit epsilon.
///
/// The lexer emits single-character puncts, so `==` arrives as two
/// adjacent `=` tokens and `!=` as `!` `=` — no other Rust surface syntax
/// produces either adjacency.
fn check_float_eq(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    for (ci, w) in windows3(code).enumerate() {
        let [a, b, c] = w;
        let (fst, snd) = (&file.tokens[a].text, &file.tokens[b].text);
        let op = if fst == "=" && snd == "=" {
            "=="
        } else if fst == "!" && snd == "=" {
            "!="
        } else {
            continue;
        };
        if file.in_test_code(a) {
            continue;
        }
        // Left operand: the token just before the operator. Right operand:
        // the token after it, looking through a unary minus.
        let left_is_float = ci > 0 && is_float_context(&file.tokens[code[ci - 1]]);
        let right_tok = if file.tokens[c].text == "-" {
            code.get(ci + 3).map(|&i| &file.tokens[i])
        } else {
            Some(&file.tokens[c])
        };
        let right_is_float = right_tok.is_some_and(is_float_context);
        if left_is_float || right_is_float {
            push(
                out,
                file,
                Rule::FloatEq,
                file.tokens[a].line,
                format!(
                    "`{op}` on a float expression: rounding makes exact equality \
                     path-dependent; use total_cmp, an epsilon compare, or justify \
                     why the value is exact"
                ),
            );
        }
    }
}

/// Whether a token marks a float operand: a float literal, or the `f32` /
/// `f64` identifier (the tail of an `as f32` cast or the head of an
/// `f64::EPSILON`-style path).
fn is_float_context(tok: &crate::lexer::Token) -> bool {
    match tok.kind {
        crate::lexer::TokKind::Ident => tok.text == "f32" || tok.text == "f64",
        crate::lexer::TokKind::Num => is_float_literal(&tok.text),
        _ => false,
    }
}

/// Whether a numeric-literal token spells a float: contains a decimal
/// point, carries an explicit float suffix, or uses exponent form
/// (`1e-3`). Integer suffixes that merely contain the letter `e`
/// (`1usize`) do not qualify, and prefixed literals (`0xAEF`) never do.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form: digits (with underscores), then e/E, then an
    // optionally signed exponent.
    if let Some(pos) = text.find(['e', 'E']) {
        let (mantissa, exp) = (&text[..pos], &text[pos + 1..]);
        let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
        return !mantissa.is_empty()
            && mantissa.chars().all(|c| c.is_ascii_digit() || c == '_')
            && !exp.is_empty()
            && exp.chars().all(|c| c.is_ascii_digit() || c == '_');
    }
    false
}

/// Flags string literals passed to the obs recording calls
/// ([`METRIC_CALLS`], [`SPAN_CALLS`]) that violate the metric-name schema
/// (DESIGN.md §10): lowercase `[a-z0-9_]` dotted segments, a known
/// subsystem prefix for full names, and `_ns` endings spelled exactly
/// `.wall_ns`. A malformed literal silently forks the metric namespace —
/// the catalogue, the `--list-metrics` table, and the perf-gate baselines
/// all key on exact names.
fn check_metric_name(file: &SourceFile, code: &[usize], out: &mut Ctx) {
    for w in windows4(code) {
        let [a, b, c, d] = w;
        let callee = file.tokens[b].text.as_str();
        let is_metric = METRIC_CALLS.contains(&callee);
        let is_span = SPAN_CALLS.contains(&callee);
        if !(is_metric || is_span) {
            continue;
        }
        // Method/path position only (`obs::counter(` / `.count(`), so
        // local free functions that happen to share a name don't fire.
        let qualifier = file.tokens[a].text.as_str();
        if !(qualifier == ":" || qualifier == ".")
            || file.tokens[c].text != "("
            || file.tokens[d].kind != crate::lexer::TokKind::Str
            || file.in_test_code(b)
        {
            continue;
        }
        // Cooked plain string literals only; raw/byte forms don't occur at
        // recording sites and are skipped rather than mis-sliced.
        let Some(name) = file.tokens[d]
            .text
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
        else {
            continue;
        };
        let problem = if is_span {
            span_fragment_problem(name)
        } else {
            metric_name_problem(name)
        };
        if let Some(why) = problem {
            push(
                out,
                file,
                Rule::MetricName,
                file.tokens[d].line,
                format!("`\"{name}\"` passed to `{callee}` {why}; see DESIGN.md §10"),
            );
        }
    }
}

/// Why `name` fails the full metric-name schema, or `None` if it passes.
fn metric_name_problem(name: &str) -> Option<&'static str> {
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < 2 {
        return Some("must be a dotted path with at least two segments");
    }
    if !segments.iter().all(|s| segment_ok(s)) {
        return Some("has a segment outside lowercase [a-z0-9_]");
    }
    if !METRIC_PREFIXES.contains(&segments[0]) {
        return Some("starts with an unknown subsystem prefix");
    }
    if name.ends_with("_ns") && !name.ends_with(".wall_ns") {
        return Some("carries wall-clock time but does not end in `.wall_ns`");
    }
    None
}

/// Why `name` fails as a span-path fragment, or `None` if it passes. Span
/// fragments need no subsystem prefix (the exporter prepends `span.`), but
/// their segments follow the same character set, and they must not claim a
/// `_ns` suffix — the span machinery appends `.wall_ns` itself.
fn span_fragment_problem(name: &str) -> Option<&'static str> {
    if name.is_empty() || !name.split('.').all(segment_ok) {
        return Some("is not a dotted path of lowercase [a-z0-9_] segments");
    }
    if name.ends_with("_ns") {
        return Some("must not end in `_ns` (the span exporter appends `.wall_ns` itself)");
    }
    None
}

fn segment_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// CT001–CT004: the taint engine in secret mode over constant-trace files.
fn check_constant_trace(file: &SourceFile, out: &mut Ctx) {
    if !in_scope(&file.rel_path, &CT_SCOPE) {
        return;
    }
    for f in taint::analyze(file, taint::Mode::Secret) {
        push(out, file, f.rule, f.line, f.message);
    }
}

/// CR004: the taint engine in relaxed-load mode over atomic-bearing crates.
fn check_relaxed_control(file: &SourceFile, out: &mut Ctx) {
    if !in_scope(&file.rel_path, &RELAXED_SCOPE) {
        return;
    }
    for f in taint::analyze(file, taint::Mode::RelaxedLoad) {
        push(out, file, f.rule, f.line, f.message);
    }
}

/// CR001/CR002: mutable globals and interior mutability on solver paths.
fn check_mutable_state(file: &SourceFile, out: &mut Ctx) {
    if !in_scope(&file.rel_path, &CR_STATE_SCOPE) {
        return;
    }
    for f in concurrency::mutable_state_findings(file) {
        push(out, file, f.rule, f.line, f.message);
    }
}

/// CR003: nested lock acquisition on lock-holding paths.
fn check_lock_order(file: &SourceFile, out: &mut Ctx) {
    if !in_scope(&file.rel_path, &LOCK_SCOPE) {
        return;
    }
    for f in concurrency::lock_order_findings(file) {
        push(out, file, f.rule, f.line, f.message);
    }
}

// SY001: raw std concurrency primitives on model-checked paths.
fn check_raw_sync(file: &SourceFile, out: &mut Ctx) {
    if !in_scope(&file.rel_path, &SYNC_SHIM_SCOPE) {
        return;
    }
    for f in concurrency::raw_sync_findings(file) {
        push(out, file, f.rule, f.line, f.message);
    }
}

/// Validates every `lint:allow` directive in the file: the rule must exist
/// and the reason must be non-empty. This is what keeps suppression
/// auditable rather than a silent escape hatch.
pub fn check_allow_directives(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut validate = |rule: &str, reason: &str, line: u32, form: &str| {
        if Rule::from_name(rule).is_none() {
            out.push(Diagnostic {
                rule: Rule::AllowSyntax,
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{form} names unknown rule `{rule}` (known: {})",
                    Rule::ALL.map(Rule::name).join(", ")
                ),
                snippet: file.snippet(line),
            });
        } else if reason.is_empty() {
            out.push(Diagnostic {
                rule: Rule::AllowSyntax,
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{form}({rule}) has no reason; write \
                     `// {form}({rule}): <why this is sound>`"
                ),
                snippet: file.snippet(line),
            });
        }
    };
    for d in file.all_allows() {
        validate(&d.rule, &d.reason, d.line, "lint:allow");
    }
    for d in file.all_module_allows() {
        validate(&d.rule, &d.reason, d.line, "lint:allow-module");
    }
}

/// The stale-allow post-pass: any *well-formed* directive that no rule
/// pass consulted while suppressing a finding is dead documentation and
/// must be deleted. Malformed directives are [`Rule::AllowSyntax`]'s and
/// are not double-reported here.
fn check_stale_allows(
    file: &SourceFile,
    used: &BTreeSet<(u32, String)>,
    used_module: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let well_formed =
        |rule: &str, reason: &str| Rule::from_name(rule).is_some() && !reason.is_empty();
    for d in file.all_allows() {
        if well_formed(&d.rule, &d.reason) && !used.contains(&(d.line, d.rule.clone())) {
            out.push(Diagnostic {
                rule: Rule::StaleAllow,
                file: file.rel_path.clone(),
                line: d.line,
                message: format!(
                    "lint:allow({}) no longer suppresses any finding; delete it",
                    d.rule
                ),
                snippet: file.snippet(d.line),
            });
        }
    }
    for d in file.all_module_allows() {
        if well_formed(&d.rule, &d.reason) && !used_module.contains(&d.rule) {
            out.push(Diagnostic {
                rule: Rule::StaleAllow,
                file: file.rel_path.clone(),
                line: d.line,
                message: format!(
                    "lint:allow-module({}) no longer suppresses any finding; delete it",
                    d.rule
                ),
                snippet: file.snippet(d.line),
            });
        }
    }
}

fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel_path == *p || rel_path.starts_with(p))
}

/// Sliding windows of 3 consecutive code-token indices.
fn windows3(code: &[usize]) -> impl Iterator<Item = [usize; 3]> + '_ {
    code.windows(3).map(|w| [w[0], w[1], w[2]])
}

/// Sliding windows of 4 consecutive code-token indices.
fn windows4(code: &[usize]) -> impl Iterator<Item = [usize; 4]> + '_ {
    code.windows(4).map(|w| [w[0], w[1], w[2], w[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src))
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<Rule> {
        d.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn wallclock_flagged_outside_obs_span() {
        let d = diags(
            "crates/core/src/lib.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(rules_of(&d), [Rule::Wallclock]);
        // …but allowed inside the designated modules.
        let d = diags(
            "crates/obs/src/span.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn systemtime_also_flagged() {
        let d = diags(
            "crates/trace/src/io.rs",
            "fn f() { let t = std::time::SystemTime::now(); }",
        );
        assert_eq!(rules_of(&d), [Rule::Wallclock]);
    }

    #[test]
    fn hash_iter_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&diags("crates/core/src/x.rs", src)),
            [Rule::HashIter]
        );
        // nn is not a deterministic-export path; no finding there.
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_fires_on_unwrap_expect_and_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!() }";
        let d = diags("crates/nn/src/x.rs", src);
        assert_eq!(
            rules_of(&d),
            [Rule::Panic, Rule::Panic, Rule::Panic, Rule::Panic]
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn free_functions_named_expect_do_not_fire() {
        let src = "fn f() { expect(1); my::unwrap(2); }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_in_string_or_comment_does_not_fire() {
        let src = "fn f() { let s = \"never panic!(here)\"; } // a.unwrap() note";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn cast_rule_narrowing_targets() {
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert_eq!(
            rules_of(&diags("crates/core/src/structure/solver.rs", src)),
            [Rule::Cast]
        );
        // Widening to u64/f64 is not flagged.
        let src = "fn f(x: u32) -> u64 { let y = x as f64; x as u64 }";
        assert!(diags("crates/core/src/structure/solver.rs", src).is_empty());
        // Out-of-scope files are not checked.
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert!(diags("crates/core/src/weights/oracle.rs", src).is_empty());
    }

    #[test]
    fn cast_rule_float_rounder_to_int() {
        let src = "fn f(x: f64) -> u64 { x.sqrt() as u64 }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/geometry.rs", src)),
            [Rule::Cast]
        );
        let src = "fn f(x: f64) -> u64 { (a / b).ceil() as u64 }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/geometry.rs", src)),
            [Rule::Cast]
        );
    }

    #[test]
    fn atomic_rule_requires_adjacent_comment() {
        let src = "fn f() { X.store(1, Ordering::SeqCst); }";
        assert_eq!(
            rules_of(&diags("crates/obs/src/registry.rs", src)),
            [Rule::AtomicOrdering]
        );
        let src = "fn f() {\n    // publishes the snapshot to readers\n    X.store(1, Ordering::Release);\n}";
        assert!(diags("crates/obs/src/registry.rs", src).is_empty());
        // Relaxed never needs justification.
        let src = "fn f() { X.store(1, Ordering::Relaxed); }";
        assert!(diags("crates/obs/src/registry.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let src = "fn f() { a.unwrap(); // lint:allow(panic): infallible by construction\n }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Preceding-line form.
        let src = "fn f() {\n    // lint:allow(panic): checked above\n    a.unwrap();\n}";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Reason-less allow: the original finding is suppressed but the
        // directive itself is reported.
        let src = "fn f() { a.unwrap(); // lint:allow(panic)\n }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/x.rs", src)),
            [Rule::AllowSyntax]
        );
        // Unknown rule name.
        let src = "fn f() { } // lint:allow(made-up): whatever";
        assert_eq!(
            rules_of(&diags("crates/nn/src/x.rs", src)),
            [Rule::AllowSyntax]
        );
    }

    #[test]
    fn float_eq_fires_on_literal_cast_and_const_operands() {
        // Float literal on the right.
        let d = diags("crates/nn/src/x.rs", "fn f(x: f32) -> bool { x == 0.0 }");
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
        // Float literal on the left, `!=`.
        let d = diags("crates/nn/src/x.rs", "fn f(x: f64) -> bool { 1.5 != x }");
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
        // Negative literal on the right.
        let d = diags("crates/nn/src/x.rs", "fn f(x: f32) -> bool { x == -1.0 }");
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
        // `as f64` cast result on the left.
        let d = diags(
            "crates/nn/src/x.rs",
            "fn f(x: u32, y: f64) -> bool { x as f64 == y }",
        );
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
        // `f32::` associated-constant path on the right.
        let d = diags(
            "crates/nn/src/x.rs",
            "fn f(x: f32) -> bool { x == f32::EPSILON }",
        );
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
        // Exponent-form literal.
        let d = diags("crates/nn/src/x.rs", "fn f(x: f64) -> bool { x != 1e-9 }");
        assert_eq!(rules_of(&d), [Rule::FloatEq]);
    }

    #[test]
    fn float_eq_spares_integers_tests_and_ordering_ops() {
        // Integer comparisons never fire, including `1usize` (whose suffix
        // contains the letter `e`) and hex literals.
        let src = "fn f(x: usize) -> bool { x == 1usize && x != 0xAE && x == 2 }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Ordering operators on floats are fine (they are well-defined).
        let src = "fn f(x: f32) -> bool { x <= 0.5 && x >= -0.5 }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Range patterns do not contain a `==` adjacency.
        let src = "fn f(x: f64) -> bool { (0.0..=1.0).contains(&x) }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Test code is exempt.
        let src = "#[cfg(test)]\nmod t { fn g(x: f32) -> bool { x == 0.0 } }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // An allow directive suppresses it.
        let src = "fn f(x: f32) -> bool { x == 0.0 } // lint:allow(float-eq): exact sentinel";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn metric_name_flags_schema_violations() {
        // Unknown prefix.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { cnnre_obs::counter(\"mystery.queries\").inc(); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
        // Single segment.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { cnnre_obs::series(\"candidates\").push(1.0); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
        // Uppercase / illegal characters.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { cnnre_obs::gauge(\"solver.Candidates\").set(1.0); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
        // `_ns` spelled wrong.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { cnnre_obs::histogram(\"trace.segment_ns\").record(1.0); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
        // profile::count takes full names too.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { cnnre_obs::profile::count(\"progress\", 1.0); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
    }

    #[test]
    fn metric_name_accepts_catalogue_names_and_span_fragments() {
        let src = "fn f() {\n\
                   cnnre_obs::counter(\"oracle.queries\").inc();\n\
                   cnnre_obs::series(\"solver.candidates_per_layer\").push(1.0);\n\
                   cnnre_obs::profile::count(\"solver.progress.root_pct\", 0.0);\n\
                   cnnre_obs::counter(\"events.emitted\").inc();\n\
                   cnnre_obs::gauge(\"events.clients\").set(0.0);\n\
                   cnnre_obs::counter(\"viz.events.consumed\").inc();\n\
                   let _s = cnnre_obs::span(\"plan\");\n\
                   let _t = cnnre_obs::span(\"trace.segment\");\n\
                   let _u = cnnre_obs::span_labelled(\"stage\", \"conv1\");\n\
                   }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        // Span fragments still need well-formed segments and no `_ns`.
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { let _s = cnnre_obs::span(\"Plan A\"); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() { let _s = cnnre_obs::span(\"stage_ns\"); }",
        );
        assert_eq!(rules_of(&d), [Rule::MetricName]);
    }

    #[test]
    fn metric_name_spares_free_functions_tests_and_non_literals() {
        // A free function named `counter` is not an obs call.
        let src = "fn f() { counter(\"whatever\"); }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        // Iterator `.count()` takes no string.
        let src = "fn f(v: &[u8]) -> usize { v.iter().count() }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        // Dynamic names can't be checked statically.
        let src = "fn f(n: &str) { cnnre_obs::counter(n).inc(); }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        // Test code is exempt; test trees get the relaxed set.
        let src = "#[cfg(test)]\nmod t { fn g() { cnnre_obs::counter(\"x\").inc(); } }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        let src = "fn f() { cnnre_obs::counter(\"x\").inc(); }";
        assert!(diags("crates/core/tests/t.rs", src).is_empty());
        // An allow directive suppresses it.
        let src = "fn f() { cnnre_obs::counter(\"x\").inc(); } \
                   // lint:allow(metric-name): probe metric for a spike";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_trees_get_the_relaxed_rule_set() {
        // unwrap/float-eq/cast are fine in an integration test file...
        let src = "fn f(x: f32) { assert!(x == 0.5); y.unwrap(); let z = 1u64 as u32; }";
        assert!(diags("tests/golden_check.rs", src).is_empty());
        assert!(diags("crates/nn/tests/gradients.rs", src).is_empty());
        // ...but wall-clock reads still fire there — even inside a
        // `#[test]` fn, since in test trees everything is test code and
        // the in-file exemption would otherwise blank the whole file.
        let src = "#[test]\nfn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_of(&diags("tests/perf_check.rs", src)),
            [Rule::Wallclock]
        );
        // ...hash-iter still fires in the scoped test trees,
        let src = "use std::collections::HashMap;\nfn f() {}";
        assert_eq!(
            rules_of(&diags("tests/golden_check.rs", src)),
            [Rule::HashIter]
        );
        assert_eq!(
            rules_of(&diags("crates/trace/tests/t.rs", src)),
            [Rule::HashIter]
        );
        // ...and directive validation still applies.
        let src = "fn f() {} // lint:allow(bogus-rule): x";
        assert_eq!(
            rules_of(&diags("tests/golden_check.rs", src)),
            [Rule::AllowSyntax]
        );
    }

    #[test]
    fn test_code_is_exempt_from_all_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { a.unwrap(); let i = Instant::now(); }\n}\n";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
    }
}
