//! The rule passes. Each pass walks one [`SourceFile`]'s token stream and
//! reports [`Diagnostic`]s; path targeting decides which files a rule
//! applies to, and `// lint:allow(<rule>): <reason>` directives suppress
//! individual findings (auditable — a directive with no reason is itself a
//! violation, see [`check_allow_directives`]).

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Wall-clock reads are permitted only here: `obs::span` measures wall
/// time by design (and tags it `wall_ns` so deterministic exports drop
/// it), and the bench harness exists to measure wall time.
const WALLCLOCK_ALLOWED: [&str; 2] = ["crates/obs/src/span.rs", "crates/obs/src/bench.rs"];

/// Crates whose `src/` trees are deterministic attack paths: their exports
/// (`--metrics` snapshots, candidate enumerations, trace segmentations)
/// must not depend on hash-map iteration order.
const HASH_ITER_SCOPE: [&str; 3] = ["crates/core/src/", "crates/trace/src/", "crates/accel/src/"];

/// Library crates that must not panic in non-test code. The bench harness
/// (`crates/bench`) and the CLI (`src/`) are binaries and may exit loudly.
const PANIC_SCOPE: [&str; 7] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/accel/src/",
    "crates/trace/src/",
    "crates/core/src/",
    "crates/obs/src/",
    "crates/lint/src/",
];

/// Modules whose integer arithmetic *is* the Equations (1)–(8) candidate
/// search space; a silently truncating cast here corrupts recovery.
const CAST_SCOPE: [&str; 3] = [
    "crates/nn/src/geometry.rs",
    "crates/core/src/structure/",
    "crates/accel/src/layout.rs",
];

/// Integer targets that can truncate a 64-bit (or float) source.
const NARROWING_INT: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// All integer targets (for the float-rounding-result check, where even a
/// 64-bit target truncates the fractional part or saturates).
const ANY_INT: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Float methods whose result is routinely cast back to an integer; such
/// casts silently saturate/truncate and must be justified.
const FLOAT_ROUNDERS: [&str; 5] = ["ceil", "floor", "round", "sqrt", "trunc"];

/// Non-`Relaxed` atomic orderings: fine when needed, but `obs` promises
/// "one relaxed load when disabled", so stronger orderings must explain
/// themselves.
const STRONG_ORDERINGS: [&str; 4] = ["SeqCst", "Acquire", "Release", "AcqRel"];

/// Runs every applicable rule pass over `file`.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file.whole_file_excluded {
        return out;
    }
    let code = file.code_indices();
    check_wallclock(file, &code, &mut out);
    check_hash_iter(file, &code, &mut out);
    check_panic(file, &code, &mut out);
    check_cast(file, &code, &mut out);
    check_atomic_ordering(file, &code, &mut out);
    check_allow_directives(file, &mut out);
    out
}

fn push(out: &mut Vec<Diagnostic>, file: &SourceFile, rule: Rule, line: u32, message: String) {
    if file.allow_for(rule.name(), line).is_some() {
        return;
    }
    out.push(Diagnostic {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

fn check_wallclock(file: &SourceFile, code: &[usize], out: &mut Vec<Diagnostic>) {
    if WALLCLOCK_ALLOWED.iter().any(|p| file.rel_path == *p) {
        return;
    }
    for w in windows4(code) {
        let [a, b, c, d] = w;
        let ty = &file.tokens[a].text;
        if (ty == "Instant" || ty == "SystemTime")
            && file.tokens[b].text == ":"
            && file.tokens[c].text == ":"
            && file.tokens[d].text == "now"
            && !file.in_test_code(a)
        {
            push(
                out,
                file,
                Rule::Wallclock,
                file.tokens[a].line,
                format!(
                    "`{ty}::now` outside obs' wall-clock modules breaks byte-identical \
                     --metrics snapshots; route timing through cnnre_obs::span"
                ),
            );
        }
    }
}

fn check_hash_iter(file: &SourceFile, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !in_scope(&file.rel_path, &HASH_ITER_SCOPE) {
        return;
    }
    for &i in code {
        let t = &file.tokens[i];
        if (t.text == "HashMap" || t.text == "HashSet") && !file.in_test_code(i) {
            push(
                out,
                file,
                Rule::HashIter,
                t.line,
                format!(
                    "`{}` on a deterministic path: iteration order varies per process; \
                     use BTreeMap/BTreeSet, sort before iterating, or justify that \
                     ordering never escapes",
                    t.text
                ),
            );
        }
    }
}

fn check_panic(file: &SourceFile, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !in_scope(&file.rel_path, &PANIC_SCOPE) {
        return;
    }
    for w in windows3(code) {
        let [a, b, c] = w;
        let name = &file.tokens[b].text;
        // `.unwrap(` / `.expect(` — method calls only, so local fns named
        // e.g. `expect_header(...)` don't fire.
        if file.tokens[a].text == "."
            && (name == "unwrap" || name == "expect")
            && file.tokens[c].text == "("
            && !file.in_test_code(b)
        {
            push(
                out,
                file,
                Rule::Panic,
                file.tokens[b].line,
                format!(
                    "`.{name}()` in library non-test code can abort the pipeline \
                     mid-attack; return a Result, provide a fallback, or justify"
                ),
            );
        }
        // Macro invocations: `panic!(` / `todo!{` / `unimplemented![`.
        let name = &file.tokens[a].text;
        if (name == "panic" || name == "todo" || name == "unimplemented")
            && file.tokens[b].text == "!"
            && matches!(file.tokens[c].text.as_str(), "(" | "[" | "{")
            && !file.in_test_code(a)
        {
            push(
                out,
                file,
                Rule::Panic,
                file.tokens[a].line,
                format!(
                    "`{name}!` in library non-test code can abort the pipeline \
                     mid-attack; return a Result or justify"
                ),
            );
        }
    }
}

fn check_cast(file: &SourceFile, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !in_scope(&file.rel_path, &CAST_SCOPE) {
        return;
    }
    for (ci, &i) in code.iter().enumerate() {
        if file.tokens[i].text != "as" || file.in_test_code(i) {
            continue;
        }
        let Some(&target_idx) = code.get(ci + 1) else {
            continue;
        };
        let target = file.tokens[target_idx].text.as_str();
        let narrowing = NARROWING_INT.contains(&target);
        let from_float_rounder =
            ANY_INT.contains(&target) && cast_source_is_float_rounder(file, code, ci);
        if narrowing || from_float_rounder {
            let why = if from_float_rounder {
                "a float-rounding result cast to an integer silently saturates"
            } else {
                "truncation here corrupts the Eq. (1)-(8) candidate search space"
            };
            push(
                out,
                file,
                Rule::Cast,
                file.tokens[i].line,
                format!(
                    "narrowing `as {target}` in layer-geometry arithmetic: {why}; \
                     use try_from with explicit handling or justify the bound"
                ),
            );
        }
    }
}

/// Whether the expression immediately before the `as` at code-index `ci`
/// ends in a call to one of [`FLOAT_ROUNDERS`], i.e. `(...).ceil() as u64`.
fn cast_source_is_float_rounder(file: &SourceFile, code: &[usize], ci: usize) -> bool {
    // Pattern, scanning left from `as`: `)` `(` ident — an empty-arg method
    // call. (All of FLOAT_ROUNDERS take no arguments.)
    if ci < 3 {
        return false;
    }
    let close = &file.tokens[code[ci - 1]].text;
    let open = &file.tokens[code[ci - 2]].text;
    let name = &file.tokens[code[ci - 3]].text;
    close == ")" && open == "(" && FLOAT_ROUNDERS.contains(&name.as_str())
}

fn check_atomic_ordering(file: &SourceFile, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !file.rel_path.starts_with("crates/obs/src/") {
        return;
    }
    for &i in code {
        let t = &file.tokens[i];
        if STRONG_ORDERINGS.contains(&t.text.as_str())
            && !file.in_test_code(i)
            && !file.has_adjacent_comment(t.line)
        {
            push(
                out,
                file,
                Rule::AtomicOrdering,
                t.line,
                format!(
                    "`Ordering::{}` without a justification comment; obs promises \
                     one Relaxed load on the disabled fast path — explain why a \
                     stronger ordering is required here",
                    t.text
                ),
            );
        }
    }
}

/// Validates every `lint:allow` directive in the file: the rule must exist
/// and the reason must be non-empty. This is what keeps suppression
/// auditable rather than a silent escape hatch.
pub fn check_allow_directives(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for d in file.all_allows() {
        if Rule::from_name(&d.rule).is_none() {
            out.push(Diagnostic {
                rule: Rule::AllowSyntax,
                file: file.rel_path.clone(),
                line: d.line,
                message: format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    d.rule,
                    Rule::ALL.map(Rule::name).join(", ")
                ),
                snippet: file.snippet(d.line),
            });
        } else if d.reason.is_empty() {
            out.push(Diagnostic {
                rule: Rule::AllowSyntax,
                file: file.rel_path.clone(),
                line: d.line,
                message: format!(
                    "lint:allow({}) has no reason; write \
                     `// lint:allow({}): <why this is sound>`",
                    d.rule, d.rule
                ),
                snippet: file.snippet(d.line),
            });
        }
    }
}

fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel_path == *p || rel_path.starts_with(p))
}

/// Sliding windows of 3 consecutive code-token indices.
fn windows3(code: &[usize]) -> impl Iterator<Item = [usize; 3]> + '_ {
    code.windows(3).map(|w| [w[0], w[1], w[2]])
}

/// Sliding windows of 4 consecutive code-token indices.
fn windows4(code: &[usize]) -> impl Iterator<Item = [usize; 4]> + '_ {
    code.windows(4).map(|w| [w[0], w[1], w[2], w[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src))
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<Rule> {
        d.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn wallclock_flagged_outside_obs_span() {
        let d = diags(
            "crates/core/src/lib.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(rules_of(&d), [Rule::Wallclock]);
        // …but allowed inside the designated modules.
        let d = diags(
            "crates/obs/src/span.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn systemtime_also_flagged() {
        let d = diags(
            "crates/trace/src/io.rs",
            "fn f() { let t = std::time::SystemTime::now(); }",
        );
        assert_eq!(rules_of(&d), [Rule::Wallclock]);
    }

    #[test]
    fn hash_iter_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&diags("crates/core/src/x.rs", src)),
            [Rule::HashIter]
        );
        // nn is not a deterministic-export path; no finding there.
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_fires_on_unwrap_expect_and_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!() }";
        let d = diags("crates/nn/src/x.rs", src);
        assert_eq!(
            rules_of(&d),
            [Rule::Panic, Rule::Panic, Rule::Panic, Rule::Panic]
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn free_functions_named_expect_do_not_fire() {
        let src = "fn f() { expect(1); my::unwrap(2); }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_in_string_or_comment_does_not_fire() {
        let src = "fn f() { let s = \"never panic!(here)\"; } // a.unwrap() note";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn cast_rule_narrowing_targets() {
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert_eq!(
            rules_of(&diags("crates/core/src/structure/solver.rs", src)),
            [Rule::Cast]
        );
        // Widening to u64/f64 is not flagged.
        let src = "fn f(x: u32) -> u64 { let y = x as f64; x as u64 }";
        assert!(diags("crates/core/src/structure/solver.rs", src).is_empty());
        // Out-of-scope files are not checked.
        let src = "fn f(x: u64) -> usize { x as usize }";
        assert!(diags("crates/core/src/weights/oracle.rs", src).is_empty());
    }

    #[test]
    fn cast_rule_float_rounder_to_int() {
        let src = "fn f(x: f64) -> u64 { x.sqrt() as u64 }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/geometry.rs", src)),
            [Rule::Cast]
        );
        let src = "fn f(x: f64) -> u64 { (a / b).ceil() as u64 }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/geometry.rs", src)),
            [Rule::Cast]
        );
    }

    #[test]
    fn atomic_rule_requires_adjacent_comment() {
        let src = "fn f() { X.store(1, Ordering::SeqCst); }";
        assert_eq!(
            rules_of(&diags("crates/obs/src/registry.rs", src)),
            [Rule::AtomicOrdering]
        );
        let src = "fn f() {\n    // publishes the snapshot to readers\n    X.store(1, Ordering::Release);\n}";
        assert!(diags("crates/obs/src/registry.rs", src).is_empty());
        // Relaxed never needs justification.
        let src = "fn f() { X.store(1, Ordering::Relaxed); }";
        assert!(diags("crates/obs/src/registry.rs", src).is_empty());
    }

    #[test]
    fn allow_suppresses_and_requires_reason() {
        let src = "fn f() { a.unwrap(); // lint:allow(panic): infallible by construction\n }";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Preceding-line form.
        let src = "fn f() {\n    // lint:allow(panic): checked above\n    a.unwrap();\n}";
        assert!(diags("crates/nn/src/x.rs", src).is_empty());
        // Reason-less allow: the original finding is suppressed but the
        // directive itself is reported.
        let src = "fn f() { a.unwrap(); // lint:allow(panic)\n }";
        assert_eq!(
            rules_of(&diags("crates/nn/src/x.rs", src)),
            [Rule::AllowSyntax]
        );
        // Unknown rule name.
        let src = "fn f() { } // lint:allow(made-up): whatever";
        assert_eq!(
            rules_of(&diags("crates/nn/src/x.rs", src)),
            [Rule::AllowSyntax]
        );
    }

    #[test]
    fn test_code_is_exempt_from_all_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { a.unwrap(); let i = Instant::now(); }\n}\n";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
    }
}
