//! Per-file analysis context: the token stream plus everything the rule
//! passes need to know about *where* a token sits — inside test-only code,
//! on a line carrying a suppression directive, or next to a comment.
//!
//! Test exclusion works at two levels:
//!
//! * **In-file**: any item annotated `#[test]` or `#[cfg(test)]` (or a
//!   `cfg` attribute mentioning `test`, e.g. `#[cfg(any(test, fuzzing))]`)
//!   is brace-matched and its whole token range excluded. A file-level
//!   `#![cfg(test)]` excludes the entire file.
//! * **Cross-file**: a `#[cfg(test)] mod foo;` declaration gates the child
//!   file `foo.rs` / `foo/mod.rs`; the workspace walker resolves those
//!   (see [`crate::walk`]) and drops gated files entirely.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A `// lint:allow(rule): reason` suppression parsed from a comment.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule name inside the parentheses, verbatim.
    pub rule: String,
    /// Justification text after the colon, trimmed.
    pub reason: String,
    /// 1-based line the directive appears on.
    pub line: u32,
}

/// One source file, lexed and annotated for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (`crates/nn/src/...`).
    pub rel_path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Raw source lines (for diagnostic snippets).
    pub lines: Vec<String>,
    /// Token-index ranges `[start, end)` that are test-only code.
    excluded: Vec<(usize, usize)>,
    /// Whether the whole file is test-only (`#![cfg(test)]`).
    pub whole_file_excluded: bool,
    /// Suppression directives keyed by line.
    allows: BTreeMap<u32, Vec<AllowDirective>>,
    /// File-wide `lint:allow-module(rule): reason` suppressions.
    module_allows: Vec<AllowDirective>,
    /// Lines carrying a `// taint:source` annotation.
    taint_marks: BTreeSet<u32>,
    /// Lines on which any comment text appears (for justification checks).
    comment_lines: BTreeSet<u32>,
    /// Child modules declared as `#[cfg(test)] mod name;`.
    pub gated_child_mods: Vec<String>,
}

impl SourceFile {
    /// Lexes and annotates `src`.
    #[must_use]
    pub fn parse(rel_path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let lines = src.lines().map(str::to_owned).collect();
        let mut file = Self {
            rel_path: rel_path.replace('\\', "/"),
            tokens,
            lines,
            excluded: Vec::new(),
            whole_file_excluded: false,
            allows: BTreeMap::new(),
            module_allows: Vec::new(),
            taint_marks: BTreeSet::new(),
            comment_lines: BTreeSet::new(),
            gated_child_mods: Vec::new(),
        };
        file.scan_comments();
        file.scan_test_regions();
        file
    }

    /// Indices of non-comment tokens, in order.
    #[must_use]
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }

    /// Whether the token at `idx` sits inside a test-only region.
    #[must_use]
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.whole_file_excluded || self.excluded.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The suppression covering `line` for `rule`, if any. A directive
    /// suppresses the line it is on (trailing comment) and, when written
    /// inside the comment block directly above a statement, every line of
    /// that statement's first code line (multi-line justifications walk up
    /// through contiguous comment lines).
    #[must_use]
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowDirective> {
        let lookup = |l: u32| {
            self.allows
                .get(&l)
                .and_then(|list| list.iter().find(|d| d.rule == rule))
        };
        if let Some(d) = lookup(line) {
            return Some(d);
        }
        // Walk upward through the contiguous comment block, if any.
        let mut l = line.saturating_sub(1);
        while l > 0 && self.comment_lines.contains(&l) {
            if let Some(d) = lookup(l) {
                return Some(d);
            }
            l -= 1;
        }
        None
    }

    /// The file-wide `lint:allow-module` suppression for `rule`, if any.
    #[must_use]
    pub fn module_allow_for(&self, rule: &str) -> Option<&AllowDirective> {
        self.module_allows.iter().find(|d| d.rule == rule)
    }

    /// All parsed line-scoped suppression directives (for validation).
    #[must_use]
    pub fn all_allows(&self) -> Vec<&AllowDirective> {
        self.allows.values().flatten().collect()
    }

    /// All parsed file-wide suppression directives (for validation).
    #[must_use]
    pub fn all_module_allows(&self) -> &[AllowDirective] {
        &self.module_allows
    }

    /// Whether `line` (or the contiguous comment block directly above it)
    /// carries a `// taint:source` annotation.
    #[must_use]
    pub fn taint_marked(&self, line: u32) -> bool {
        if self.taint_marks.contains(&line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && self.comment_lines.contains(&l) {
            if self.taint_marks.contains(&l) {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// Whether any comment text appears on `line` or the line above —
    /// the atomic-ordering rule's notion of "carries a justification".
    #[must_use]
    pub fn has_adjacent_comment(&self, line: u32) -> bool {
        self.comment_lines.contains(&line) || self.comment_lines.contains(&line.saturating_sub(1))
    }

    /// Trimmed source text of `line` (1-based), for diagnostic snippets.
    #[must_use]
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    fn scan_comments(&mut self) {
        for tok in &self.tokens {
            if !tok.is_comment() {
                continue;
            }
            let span = u32::try_from(tok.text.lines().count().max(1) - 1).unwrap_or(0);
            for l in tok.line..=tok.line + span {
                self.comment_lines.insert(l);
            }
            for (off, text) in tok.text.lines().enumerate() {
                let line = tok.line + u32::try_from(off).unwrap_or(0);
                match parse_directive(text, line) {
                    Some(Directive::Line(d)) => {
                        self.allows.entry(d.line).or_default().push(d);
                    }
                    Some(Directive::Module(d)) => self.module_allows.push(d),
                    Some(Directive::TaintSource) => {
                        self.taint_marks.insert(line);
                    }
                    None => {}
                }
            }
        }
    }

    /// Finds `#[test]` / `#[cfg(..test..)]`-annotated items and records
    /// their token ranges; records `#[cfg(test)] mod x;` child gates.
    fn scan_test_regions(&mut self) {
        let code = self.code_indices();
        let tok = |ci: usize| -> &Token { &self.tokens[code[ci]] };
        let mut ci = 0usize;
        while ci < code.len() {
            // Inner attribute `#![cfg(test)]` gates the whole file.
            if tok(ci).text == "#"
                && ci + 1 < code.len()
                && tok(ci + 1).text == "!"
                && ci + 2 < code.len()
                && tok(ci + 2).text == "["
            {
                let (end, is_test) = scan_attr_group(&self.tokens, &code, ci + 2);
                if is_test {
                    self.whole_file_excluded = true;
                    return;
                }
                ci = end;
                continue;
            }
            // Outer attribute `#[...]`.
            if tok(ci).text == "#" && ci + 1 < code.len() && tok(ci + 1).text == "[" {
                let (mut end, mut any_test) = scan_attr_group(&self.tokens, &code, ci + 1);
                // Fold in any directly following attributes (e.g.
                // `#[cfg(test)] #[allow(...)] fn ...`).
                while end + 1 < code.len() && tok(end).text == "#" && tok(end + 1).text == "[" {
                    let (e2, t2) = scan_attr_group(&self.tokens, &code, end + 1);
                    any_test = any_test || t2;
                    end = e2;
                }
                if any_test {
                    let attr_start_tok = code[ci];
                    // `mod name;` → cross-file gate; `... { ... }` → local
                    // exclusion; `...;` → trivially excluded item.
                    let (item_end, gated_mod) = scan_item(&self.tokens, &code, end);
                    if let Some(name) = gated_mod {
                        self.gated_child_mods.push(name);
                    }
                    let end_tok = if item_end < code.len() {
                        code[item_end] + 1
                    } else {
                        self.tokens.len()
                    };
                    self.excluded.push((attr_start_tok, end_tok));
                    ci = item_end + 1;
                    continue;
                }
                ci = end;
                continue;
            }
            ci += 1;
        }
    }
}

/// A parsed comment directive.
enum Directive {
    /// `lint:allow(rule): reason` — suppresses one site.
    Line(AllowDirective),
    /// `lint:allow-module(rule): reason` — suppresses a whole file.
    Module(AllowDirective),
    /// `taint:source` — seeds the taint engine at this line.
    TaintSource,
}

/// Parses one comment line as a directive. Malformed allow variants
/// (missing reason, missing parens) still return a directive with whatever
/// could be salvaged so that directive validation can report them
/// precisely; `None` means the comment carries no directive at all. A
/// directive must *open* the comment (`// lint:allow…`) and doc comments
/// never count — prose that merely mentions the syntax (like this
/// sentence) is not a directive.
fn parse_directive(comment_line: &str, line: u32) -> Option<Directive> {
    let body = comment_line
        .trim_start()
        .trim_start_matches('/')
        .trim_start_matches('*');
    let trimmed = comment_line.trim_start();
    if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("/*!") {
        return None;
    }
    let body = body.trim_start();
    if body.starts_with("taint:source") {
        return Some(Directive::TaintSource);
    }
    let rest = body.strip_prefix("lint:allow")?;
    let (module, rest) = match rest.strip_prefix("-module") {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let (rule, after) = match rest.strip_prefix('(') {
        Some(r) => match r.find(')') {
            Some(close) => (r[..close].trim().to_owned(), &r[close + 1..]),
            None => (r.trim().to_owned(), ""),
        },
        None => (String::new(), rest),
    };
    let reason = after
        .trim_start()
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("")
        .to_owned();
    let d = AllowDirective { rule, reason, line };
    Some(if module {
        Directive::Module(d)
    } else {
        Directive::Line(d)
    })
}

/// Starting at the code-index of a `[`, consumes the bracketed attribute
/// group. Returns (code-index just past `]`, attribute-mentions-test).
/// "Mentions test" is a bare `#[test]` or any `cfg`/`cfg_attr` attribute
/// whose argument tokens include the identifier `test`.
fn scan_attr_group(tokens: &[Token], code: &[usize], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut ci = open;
    while ci < code.len() {
        let t = &tokens[code[ci]];
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_test = match idents.as_slice() {
                        ["test"] => true,
                        [first, rest @ ..] => {
                            (*first == "cfg" || *first == "cfg_attr")
                                && rest.contains(&"test")
                                // `cfg(not(test))` is production code.
                                && !rest.contains(&"not")
                        }
                        [] => false,
                    };
                    return (ci + 1, is_test);
                }
            }
            _ if t.kind == TokKind::Ident => idents.push(&t.text),
            _ => {}
        }
        ci += 1;
    }
    (code.len(), false)
}

/// Starting at the code-index of an item's first token (after its
/// attributes), consumes the item: up to and including its matching `}` (a
/// body) or its `;` (declaration). Returns (code-index of the final token,
/// gated module name if the item was `mod name;`).
fn scan_item(tokens: &[Token], code: &[usize], start: usize) -> (usize, Option<String>) {
    let gated_mod = if start + 2 < code.len()
        && tokens[code[start]].text == "mod"
        && tokens[code[start + 1]].kind == TokKind::Ident
        && tokens[code[start + 2]].text == ";"
    {
        Some(tokens[code[start + 1]].text.clone())
    } else {
        None
    };
    let mut ci = start;
    let mut brace_depth = 0usize;
    let mut entered = false;
    while ci < code.len() {
        match tokens[code[ci]].text.as_str() {
            "{" => {
                brace_depth += 1;
                entered = true;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    return (ci, gated_mod);
                }
            }
            ";" if !entered => return (ci, gated_mod),
            _ => {}
        }
        ci += 1;
    }
    (code.len().saturating_sub(1), gated_mod)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_excluded() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let unwraps: Vec<bool> = f
            .code_indices()
            .into_iter()
            .filter(|&i| f.tokens[i].text == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, [false, true]);
        // Code after the test module is live again.
        let also = f
            .code_indices()
            .into_iter()
            .find(|&i| f.tokens[i].text == "also_live");
        assert!(also.is_some_and(|i| !f.in_test_code(i)));
    }

    #[test]
    fn test_fn_attribute_is_excluded() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let flags: Vec<bool> = f
            .code_indices()
            .into_iter()
            .filter(|&i| f.tokens[i].text == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(flags, [true, false]);
    }

    #[test]
    fn cfg_any_test_is_excluded() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nfn helper() { a.unwrap(); }";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let idx = f
            .code_indices()
            .into_iter()
            .find(|&i| f.tokens[i].text == "unwrap");
        assert!(idx.is_some_and(|i| f.in_test_code(i)));
    }

    #[test]
    fn inner_cfg_test_excludes_whole_file() {
        let f = SourceFile::parse("crates/nn/src/x.rs", "#![cfg(test)]\nfn f() {}");
        assert!(f.whole_file_excluded);
    }

    #[test]
    fn gated_child_module_is_recorded() {
        let src = "#[cfg(test)]\nmod proptests;\npub mod live;";
        let f = SourceFile::parse("crates/trace/src/lib.rs", src);
        assert_eq!(f.gated_child_mods, ["proptests"]);
    }

    #[test]
    fn stacked_attributes_fold_into_one_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap(); }";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let idx = f
            .code_indices()
            .into_iter()
            .find(|&i| f.tokens[i].text == "unwrap");
        assert!(idx.is_some_and(|i| f.in_test_code(i)));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let idx = f
            .code_indices()
            .into_iter()
            .find(|&i| f.tokens[i].text == "unwrap");
        assert!(idx.is_some_and(|i| !f.in_test_code(i)));
    }

    #[test]
    fn non_test_attributes_do_not_exclude() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { a.unwrap(); }";
        let f = SourceFile::parse("crates/nn/src/x.rs", src);
        let idx = f
            .code_indices()
            .into_iter()
            .find(|&i| f.tokens[i].text == "unwrap");
        assert!(idx.is_some_and(|i| !f.in_test_code(i)));
    }

    #[test]
    fn allow_directive_parses_rule_and_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "a(); // lint:allow(panic): mutex poisoning is unrecoverable\n",
        );
        let d = f.allow_for("panic", 1).expect("directive");
        assert_eq!(d.rule, "panic");
        assert_eq!(d.reason, "mutex poisoning is unrecoverable");
        // The directive also covers the following line when on its own line.
        let f = SourceFile::parse("x.rs", "// lint:allow(cast): bounded by W\nlet x = 1;\n");
        assert!(f.allow_for("cast", 2).is_some());
        assert!(f.allow_for("panic", 2).is_none());
    }

    #[test]
    fn malformed_allow_keeps_empty_reason_for_validation() {
        let f = SourceFile::parse("x.rs", "a(); // lint:allow(panic)\n");
        let all = f.all_allows();
        assert_eq!(all.len(), 1);
        assert!(all[0].reason.is_empty());
    }

    #[test]
    fn module_allow_covers_whole_file_and_is_not_a_line_allow() {
        let src = "// lint:allow-module(ct-branch): simulated victim\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.module_allow_for("ct-branch").is_some());
        assert!(f.module_allow_for("ct-index").is_none());
        assert!(f.all_allows().is_empty());
        assert_eq!(f.all_module_allows().len(), 1);
    }

    #[test]
    fn taint_source_marks_its_line_and_the_statement_below() {
        let src =
            "// taint:source\nlet key = read();\nlet pub_x = 1; // taint:source\nlet other = 2;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.taint_marked(1));
        assert!(f.taint_marked(2));
        assert!(f.taint_marked(3));
        assert!(!f.taint_marked(5));
    }

    #[test]
    fn doc_comment_taint_mention_is_not_a_marker() {
        let f = SourceFile::parse("x.rs", "/// taint:source explained\nfn f() {}\n");
        assert!(!f.taint_marked(2));
    }
}
