//! `cnnre-lint` — in-tree static analysis for the attack pipeline.
//!
//! The pipeline's correctness rests on invariants `rustc` cannot see:
//!
//! * **Determinism.** Byte-identical `--metrics` snapshots and reproducible
//!   candidate enumeration require no wall-clock reads and no
//!   unordered-map iteration anywhere on a deterministic path
//!   ([`Rule::Wallclock`], [`Rule::HashIter`]).
//! * **Panic-safety.** A library `unwrap()` aborts a multi-hour trace
//!   analysis on the first malformed input ([`Rule::Panic`]).
//! * **Cast-soundness.** The Equations (1)–(8) search space (PAPER.md §3)
//!   silently corrupts if an integer cast truncates layer geometry
//!   ([`Rule::Cast`]).
//! * **Ordering discipline.** `cnnre-obs` promises a single `Relaxed` load
//!   on its disabled fast path; stronger orderings must justify themselves
//!   ([`Rule::AtomicOrdering`]).
//! * **Constant-trace defenses.** The ORAM/zero-pruning defenses are only
//!   sound if their implementations contain no secret-dependent branches,
//!   indexing, variable-time arithmetic, or loop bounds — a taint-dataflow
//!   engine ([`taint`]) verifies this (CT001–CT004).
//! * **Concurrency readiness.** ROADMAP item 1's `Send + Sync` parallel
//!   solver needs solver/oracle paths free of mutable globals, interior
//!   mutability, undocumented nested locking, and `Relaxed` loads steering
//!   control flow ([`concurrency`], CR001–CR004).
//!
//! Like `cnnre-obs`, the analyzer is zero-dependency: a hand-written lexer
//! ([`lexer`]) feeds surface rule passes ([`rules`]) over every workspace
//! source file ([`walk`]); a token-tree layer ([`tree`]) and a lightweight
//! item recognizer ([`syntax`]) give the dataflow rules structure to work
//! with. Suppression is explicit and auditable:
//!
//! ```text
//! let w = widths.last().unwrap_or(&0); // no directive needed — total
//! let x = map[&k]; // lint:allow(panic): key inserted two lines up
//! ```
//!
//! A directive with an unknown rule or an empty reason is itself a
//! violation ([`Rule::AllowSyntax`]). Run the binary with
//! `cargo run -p cnnre-lint` (exit 0 = clean, 1 = violations); see the
//! README's "Static analysis" section and DESIGN.md §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod syntax;
pub mod taint;
pub mod tree;
pub mod walk;

pub use diag::{render_human, render_json, Diagnostic, Rule};
pub use source::SourceFile;

use std::io;
use std::path::Path;

/// The result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned (after dropping test-gated files).
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints every source file under `root` (the workspace checkout).
///
/// # Errors
/// Returns any I/O error encountered while walking or reading files.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    lint_workspace_with(root, false)
}

/// [`lint_workspace`], optionally extending the scan to `tests/`,
/// `benches/`, and `examples/` trees. Test-tree files are checked under
/// the relaxed rule set: determinism rules (wallclock, hash-iter) and
/// directive validation stay on; panic/cast/atomic/float-eq are off (see
/// [`rules::check_file`]).
///
/// # Errors
/// Returns any I/O error encountered while walking or reading files.
pub fn lint_workspace_with(root: &Path, include_tests: bool) -> io::Result<Report> {
    let files = walk::load_workspace_with(root, include_tests)?;
    let mut diagnostics: Vec<Diagnostic> = files.iter().flat_map(rules::check_file).collect();
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Lints a single in-memory source, as if it lived at `rel_path` inside the
/// workspace. Used by the fixture self-tests; path targeting behaves
/// exactly as in [`lint_workspace`] (cross-file module gating excepted).
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    rules::check_file(&SourceFile::parse(rel_path, src))
}
