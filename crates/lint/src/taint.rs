//! Intraprocedural taint-dataflow engine over the token tree.
//!
//! The engine answers one question per function: *can a secret-bearing
//! value reach a trace-visible sink?* Sources are (a) parameters and
//! struct fields whose declared type names a secret-bearing type
//! ([`SECRET_TYPES`]), (b) lines annotated `// taint:source`, and — in
//! [`Mode::RelaxedLoad`] — (c) `…load(Ordering::Relaxed)` expressions.
//! Taint propagates through `let` bindings, assignments (including
//! compound ones and `self.field = …`, which feeds a file-level field
//! fixpoint), `for`/`if let`/`match`-arm pattern bindings, mutating method
//! calls (`v.push(secret)` taints `v`), and closure parameters (a closure
//! argument to a method on a tainted receiver binds tainted parameters).
//! Sinks are branch conditions (CT001), index expressions (CT002),
//! variable-latency arithmetic (CT003) and loop bounds (CT004) — or, for
//! relaxed-load taint, any control decision (CR004).
//!
//! The analysis is deliberately over-approximate: a missed finding is a
//! silent gap, a false one costs a justified `lint:allow`. Two known
//! approximations: taint is tracked per *name*, not per path (`a.x`
//! tainted taints `a`), and closure-parameter taint uses the taint of the
//! whole receiver chain before the closure.

use crate::diag::Rule;
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use crate::syntax::{self, functions, struct_fields, FnDecl, KEYWORDS};
use crate::tree::{self, build, Delim, Tree};
use std::collections::BTreeSet;

/// Types whose values are secrets in the paper's threat model: the victim
/// network's architecture and weights, and anything derived from observing
/// it (traces, candidate structures, oracle handles).
pub const SECRET_TYPES: [&str; 15] = [
    "Network",
    "Tensor3",
    "Tensor4",
    "Trace",
    "MemoryEvent",
    "Stage",
    "Schedule",
    "LayerGeometry",
    "LayerParams",
    "CandidateStructure",
    "RankedCandidate",
    "ObservedNetwork",
    "FunctionalOracle",
    "AcceleratorOracle",
    "Weights",
];

/// Methods with operand-dependent latency on real hardware.
const VAR_TIME_METHODS: [&str; 12] = [
    "div_ceil",
    "div_euclid",
    "rem_euclid",
    "checked_div",
    "checked_rem",
    "pow",
    "powi",
    "powf",
    "sqrt",
    "ln",
    "log2",
    "exp",
];

/// Methods that inject their arguments into the receiver.
const MUTATING_METHODS: [&str; 6] = ["push", "insert", "extend", "append", "push_str", "set"];

/// What counts as a source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Secret-typed params/fields and `taint:source` lines (CT rules).
    Secret,
    /// `load(Ordering::Relaxed)` expressions (CR004).
    RelaxedLoad,
}

/// One taint finding, before suppression handling.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule the sink maps to.
    pub rule: Rule,
    /// 1-based line of the sink.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// Runs the taint analysis over every non-test function in `file`.
#[must_use]
pub fn analyze(file: &SourceFile, mode: Mode) -> Vec<Finding> {
    if file.whole_file_excluded {
        return Vec::new();
    }
    let tokens = &file.tokens;
    let trees = build(tokens);
    let fns: Vec<FnDecl<'_>> = functions(&trees, tokens)
        .into_iter()
        .filter(|f| !file.in_test_code(f.name_tok))
        .collect();

    // Seed secret fields from declared types, then run the file-level
    // fixpoint: a field assigned a tainted value becomes secret itself.
    let mut secret_fields: BTreeSet<String> = BTreeSet::new();
    if mode == Mode::Secret {
        for field in struct_fields(&trees, tokens) {
            if field
                .ty_idents
                .iter()
                .any(|t| SECRET_TYPES.contains(&t.as_str()))
            {
                secret_fields.insert(field.name);
            }
        }
    }
    let eng = |secret_fields: &BTreeSet<String>| Engine {
        file,
        tokens,
        mode,
        secret_fields: secret_fields.clone(),
    };
    if mode == Mode::Secret {
        for _ in 0..8 {
            let engine = eng(&secret_fields);
            let mut grew = false;
            for f in &fns {
                let st = engine.run_fn(f);
                for nf in st.new_fields {
                    grew |= secret_fields.insert(nf);
                }
            }
            if !grew {
                break;
            }
        }
    }

    // Final pass: converged field set, per-fn fixpoint, then sinks.
    let engine = eng(&secret_fields);
    let mut out = Vec::new();
    for f in &fns {
        let st = engine.run_fn(f);
        engine.sink_walk(f.body, false, &st, &mut out);
    }
    // One finding per (rule, line): several sinks on a line would need
    // several identical allows otherwise.
    let mut seen = BTreeSet::new();
    out.retain(|f| seen.insert((f.rule, f.line)));
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Per-function taint state.
#[derive(Default)]
struct FnState {
    /// Local names currently carrying taint.
    tainted: BTreeSet<String>,
    /// `self.field` targets assigned tainted values (file fixpoint input).
    new_fields: BTreeSet<String>,
}

struct Engine<'f> {
    file: &'f SourceFile,
    tokens: &'f [Token],
    mode: Mode,
    secret_fields: BTreeSet<String>,
}

impl Engine<'_> {
    /// Seeds a function's parameters and iterates binding propagation to a
    /// fixpoint.
    fn run_fn(&self, f: &FnDecl<'_>) -> FnState {
        let mut st = FnState::default();
        if self.mode == Mode::Secret {
            for p in &f.params {
                if p.name == "self" {
                    continue;
                }
                let secret_ty = p
                    .ty_idents
                    .iter()
                    .any(|t| SECRET_TYPES.contains(&t.as_str()));
                if secret_ty || self.file.taint_marked(p.line) {
                    st.tainted.insert(p.name.clone());
                }
            }
        }
        for _ in 0..12 {
            let before = st.tainted.len() + st.new_fields.len();
            self.bind_walk(f.body, false, &mut st);
            if st.tainted.len() + st.new_fields.len() == before {
                break;
            }
        }
        st
    }

    /// Whether any token under `trees` carries taint: a tainted local, a
    /// secret field access, a `taint:source`-marked line, or (in relaxed
    /// mode) a `load(… Relaxed …)` expression.
    fn slice_tainted(&self, trees: &[Tree], st: &FnState) -> bool {
        let flat = tree::flatten(trees);
        for (pos, &ti) in flat.iter().enumerate() {
            let tok = &self.tokens[ti];
            if tok.kind == TokKind::Ident {
                if st.tainted.contains(&tok.text) {
                    return true;
                }
                // `.field` access on any receiver.
                if pos > 0
                    && self.tokens[flat[pos - 1]].text == "."
                    && self.secret_fields.contains(&tok.text)
                {
                    return true;
                }
                if self.mode == Mode::RelaxedLoad
                    && tok.text == "load"
                    && flat[pos + 1..]
                        .iter()
                        .take(6)
                        .any(|&a| self.tokens[a].text == "Relaxed")
                {
                    return true;
                }
            }
            if self.mode == Mode::Secret && self.file.taint_marked(tok.line) {
                return true;
            }
        }
        false
    }

    /// One propagation sweep over a statement level.
    fn bind_walk(&self, trees: &[Tree], inherited: bool, st: &mut FnState) {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(l) => {
                    let text = self.tokens[*l].text.as_str();
                    match text {
                        "let" => self.bind_let(trees, i, st),
                        "for" => self.bind_for(trees, i, st),
                        "match" => self.bind_match(trees, i, st),
                        "=" => self.bind_assign(trees, i, st),
                        "." => self.bind_mutation(trees, i, st),
                        "|" => self.bind_closure(trees, i, inherited, st),
                        _ => {}
                    }
                }
                Tree::Group { children, .. } => {
                    let ctx = inherited || self.slice_tainted(&trees[..i], st);
                    self.bind_walk(children, ctx, st);
                }
            }
        }
    }

    /// `let pat[: Ty] = rhs ;` — binds `pat` when `rhs` (or the declared
    /// type, or a `taint:source` mark) is secret. Also covers `if let` /
    /// `while let` / `let … else`, whose rhs ends at the block.
    fn bind_let(&self, trees: &[Tree], i: usize, st: &mut FnState) {
        let mut colon = None;
        let mut eq = None;
        let mut end = trees.len();
        for (j, t) in trees.iter().enumerate().skip(i + 1) {
            match t {
                Tree::Leaf(l) => {
                    let tx = self.tokens[*l].text.as_str();
                    let prev_colon = j > 0
                        && trees[j - 1]
                            .leaf(self.tokens)
                            .is_some_and(|p| p.text == ":");
                    let next_colon = trees
                        .get(j + 1)
                        .and_then(|n| n.leaf(self.tokens))
                        .is_some_and(|n| n.text == ":");
                    if tx == ":" && colon.is_none() && eq.is_none() && !prev_colon && !next_colon {
                        colon = Some(j);
                    } else if tx == "=" && eq.is_none() && !is_comparison(trees, j, self.tokens) {
                        eq = Some(j);
                    } else if tx == ";" {
                        end = j;
                        break;
                    }
                }
                Tree::Group {
                    delim: Delim::Brace,
                    ..
                } if eq.is_some() => {
                    // `if let pat = rhs { … }` / `let … else { … }`.
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        let Some(eq) = eq else { return };
        let pat_end = colon.unwrap_or(eq);
        let declared_secret = self.mode == Mode::Secret
            && colon.is_some_and(|c| {
                tree::flatten(&trees[c + 1..eq])
                    .iter()
                    .any(|&t| SECRET_TYPES.contains(&self.tokens[t].text.as_str()))
            });
        if declared_secret || self.slice_tainted(&trees[eq + 1..end], st) {
            self.bind_pattern(&trees[i + 1..pat_end], st);
        }
    }

    /// `for pat in iter { … }` — binds `pat` when `iter` is tainted.
    fn bind_for(&self, trees: &[Tree], i: usize, st: &mut FnState) {
        let Some(in_pos) =
            trees.iter().enumerate().skip(i + 1).find_map(|(j, t)| {
                (t.leaf(self.tokens).is_some_and(|l| l.text == "in")).then_some(j)
            })
        else {
            return;
        };
        let body_pos = trees[in_pos + 1..]
            .iter()
            .position(|t| t.is_group(Delim::Brace))
            .map(|p| in_pos + 1 + p)
            .unwrap_or(trees.len());
        if self.slice_tainted(&trees[in_pos + 1..body_pos], st) {
            self.bind_pattern(&trees[i + 1..in_pos], st);
        }
    }

    /// `match scrutinee { pat => …, … }` — binds arm patterns when the
    /// scrutinee is tainted. Guard expressions (`pat if cond =>`) are not
    /// treated as bindings.
    fn bind_match(&self, trees: &[Tree], i: usize, st: &mut FnState) {
        let Some(body_pos) = trees[i + 1..]
            .iter()
            .position(|t| t.is_group(Delim::Brace))
            .map(|p| i + 1 + p)
        else {
            return;
        };
        if !self.slice_tainted(&trees[i + 1..body_pos], st) {
            return;
        }
        let Tree::Group { children, .. } = &trees[body_pos] else {
            return;
        };
        let mut collecting = true;
        let mut pat_start = 0usize;
        let mut j = 0usize;
        while j < children.len() {
            if let Some(l) = children[j].leaf(self.tokens) {
                match l.text.as_str() {
                    "if" if collecting => {
                        // Guard: the pattern ends here.
                        self.bind_pattern(&children[pat_start..j], st);
                        collecting = false;
                    }
                    "=" if children
                        .get(j + 1)
                        .and_then(|n| n.leaf(self.tokens))
                        .is_some_and(|n| n.text == ">") =>
                    {
                        if collecting {
                            self.bind_pattern(&children[pat_start..j], st);
                        }
                        // Skip the arm body: a brace group, or up to the
                        // next top-level comma.
                        j += 2;
                        if children.get(j).is_some_and(|t| t.is_group(Delim::Brace)) {
                            j += 1;
                        } else {
                            while j < children.len() {
                                if children[j].leaf(self.tokens).is_some_and(|l| l.text == ",") {
                                    break;
                                }
                                j += 1;
                            }
                        }
                        // Past the separating comma, the next arm starts.
                        if children
                            .get(j)
                            .and_then(|t| t.leaf(self.tokens))
                            .is_some_and(|l| l.text == ",")
                        {
                            j += 1;
                        }
                        pat_start = j;
                        collecting = true;
                        continue;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }

    /// `place = rhs` / `place op= rhs` — taints the place's root binding;
    /// `self.field = rhs` also feeds the field fixpoint.
    fn bind_assign(&self, trees: &[Tree], i: usize, st: &mut FnState) {
        if is_comparison(trees, i, self.tokens) {
            return;
        }
        // Compound assignment: the operator punct sits just left of `=`.
        let mut place_end = i;
        while place_end > 0 {
            let is_op = trees[place_end - 1].leaf(self.tokens).is_some_and(|l| {
                matches!(
                    l.text.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<" | ">"
                )
            });
            if is_op {
                place_end -= 1;
            } else {
                break;
            }
        }
        let mut place_start = place_end;
        while place_start > 0 && is_chain_tree(&trees[place_start - 1], self.tokens) {
            place_start -= 1;
        }
        if place_start == place_end {
            return;
        }
        let mut end = trees.len();
        for (j, t) in trees.iter().enumerate().skip(i + 1) {
            if t.leaf(self.tokens).is_some_and(|l| l.text == ";") {
                end = j;
                break;
            }
        }
        if !self.slice_tainted(&trees[i + 1..end], st) {
            return;
        }
        let place = &trees[place_start..place_end];
        self.taint_place(place, st);
    }

    /// `recv.push(args)` and friends: a tainted argument taints the
    /// receiver (and `self.field.push(…)` feeds the field fixpoint).
    fn bind_mutation(&self, trees: &[Tree], i: usize, st: &mut FnState) {
        let is_mutator = trees
            .get(i + 1)
            .and_then(|t| t.leaf(self.tokens))
            .is_some_and(|l| MUTATING_METHODS.contains(&l.text.as_str()));
        let args_tainted = is_mutator
            && trees.get(i + 2).is_some_and(|t| {
                if let Tree::Group {
                    delim: Delim::Paren,
                    children,
                    ..
                } = t
                {
                    self.slice_tainted(children, st)
                } else {
                    false
                }
            });
        if !args_tainted {
            return;
        }
        let mut start = i;
        while start > 0 && is_chain_tree(&trees[start - 1], self.tokens) {
            start -= 1;
        }
        self.taint_place(&trees[start..i], st);
    }

    /// Closure parameters: `|p, q|` binds tainted params when the context
    /// (inherited from the receiver chain before the enclosing group) is
    /// tainted.
    fn bind_closure(&self, trees: &[Tree], i: usize, inherited: bool, st: &mut FnState) {
        let ctx = inherited || self.slice_tainted(&trees[..i], st);
        if !ctx {
            return;
        }
        // Find the closing `|` within a short window of simple trees.
        let mut close = None;
        for (j, t) in trees.iter().enumerate().skip(i + 1).take(16) {
            if let Some(l) = t.leaf(self.tokens) {
                match l.text.as_str() {
                    "|" => {
                        close = Some(j);
                        break;
                    }
                    ";" | "{" | "}" => break,
                    _ => {}
                }
            }
        }
        let Some(close) = close else { return };
        // Bind param names, skipping `: Type` segments.
        let mut in_type = false;
        for t in &trees[i + 1..close] {
            if let Some(l) = t.leaf(self.tokens) {
                match l.text.as_str() {
                    ":" => in_type = true,
                    "," => in_type = false,
                    _ if !in_type && syntax::is_binding_ident(l) => {
                        st.tainted.insert(l.text.clone());
                    }
                    _ => {}
                }
            }
        }
    }

    /// Marks a place expression's root as tainted; records `self.field`
    /// targets for the file-level field fixpoint.
    fn taint_place(&self, place: &[Tree], st: &mut FnState) {
        let flat = tree::flatten(place);
        let mut idents = flat
            .iter()
            .map(|&t| &self.tokens[t])
            .filter(|t| t.kind == TokKind::Ident);
        match idents.next() {
            Some(first) if first.text == "self" => {
                if let Some(field) = idents.next() {
                    st.new_fields.insert(field.text.clone());
                }
            }
            Some(first) if syntax::is_binding_ident(first) => {
                st.tainted.insert(first.text.clone());
            }
            _ => {}
        }
    }

    /// Binds every binding identifier in a pattern slice.
    fn bind_pattern(&self, pat: &[Tree], st: &mut FnState) {
        for &t in &tree::flatten(pat) {
            let tok = &self.tokens[t];
            if syntax::is_binding_ident(tok) {
                st.tainted.insert(tok.text.clone());
            }
        }
    }

    /// Reports every sink reached by taint at one statement level.
    fn sink_walk(&self, trees: &[Tree], inherited: bool, st: &FnState, out: &mut Vec<Finding>) {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(l) => {
                    let tok = &self.tokens[*l];
                    match tok.text.as_str() {
                        "if" | "match" => {
                            let end = block_start(trees, i + 1, self.tokens);
                            if self.slice_tainted(&trees[i + 1..end], st) {
                                out.push(self.finding_branch(&tok.text, tok.line));
                            }
                        }
                        "while" => {
                            let end = block_start(trees, i + 1, self.tokens);
                            if self.slice_tainted(&trees[i + 1..end], st) {
                                out.push(self.finding_loop("while", tok.line));
                            }
                        }
                        "for" if self.mode == Mode::Secret => {
                            if let Some(in_pos) =
                                trees.iter().enumerate().skip(i + 1).find_map(|(j, t)| {
                                    (t.leaf(self.tokens).is_some_and(|l| l.text == "in"))
                                        .then_some(j)
                                })
                            {
                                let end = block_start(trees, in_pos + 1, self.tokens);
                                if self.slice_tainted(&trees[in_pos + 1..end], st) {
                                    out.push(self.finding_loop("for", tok.line));
                                }
                            }
                        }
                        "/" | "%"
                            if self.mode == Mode::Secret
                                && self.arith_operand_tainted(trees, i, st) =>
                        {
                            out.push(Finding {
                                rule: Rule::CtArith,
                                line: tok.line,
                                message: format!(
                                    "variable-latency `{}` on a secret-derived operand (CT003)",
                                    tok.text
                                ),
                            });
                        }
                        "." if self.mode == Mode::Secret => {
                            if let Some(line) = self.var_time_call(trees, i, st) {
                                out.push(Finding {
                                    rule: Rule::CtArith,
                                    line,
                                    message: "variable-latency method call on a secret-derived \
                                              value (CT003)"
                                        .to_owned(),
                                });
                            }
                        }
                        _ => {}
                    }
                }
                Tree::Group {
                    delim: Delim::Bracket,
                    open,
                    children,
                } if self.mode == Mode::Secret => {
                    if self.is_index_position(trees, i) && self.slice_tainted(children, st) {
                        out.push(Finding {
                            rule: Rule::CtIndex,
                            line: self.tokens[*open].line,
                            message: "memory access indexed by secret-derived data (CT002)"
                                .to_owned(),
                        });
                    }
                    let ctx = inherited || self.slice_tainted(&trees[..i], st);
                    self.sink_walk(children, ctx, st, out);
                }
                Tree::Group { children, .. } => {
                    let ctx = inherited || self.slice_tainted(&trees[..i], st);
                    self.sink_walk(children, ctx, st, out);
                }
            }
        }
    }

    fn finding_branch(&self, kw: &str, line: u32) -> Finding {
        match self.mode {
            Mode::Secret => Finding {
                rule: Rule::CtBranch,
                line,
                message: format!("`{kw}` condition derives from secret data (CT001)"),
            },
            Mode::RelaxedLoad => Finding {
                rule: Rule::CrRelaxedControl,
                line,
                message: format!(
                    "`{kw}` condition steered by an Ordering::Relaxed atomic load (CR004)"
                ),
            },
        }
    }

    fn finding_loop(&self, kw: &str, line: u32) -> Finding {
        match self.mode {
            Mode::Secret => Finding {
                rule: Rule::CtLoop,
                line,
                message: format!("`{kw}` trip count derives from secret data (CT004)"),
            },
            Mode::RelaxedLoad => Finding {
                rule: Rule::CrRelaxedControl,
                line,
                message: format!(
                    "`{kw}` condition steered by an Ordering::Relaxed atomic load (CR004)"
                ),
            },
        }
    }

    /// Whether either operand chain around a `/` / `%` at `i` is tainted.
    fn arith_operand_tainted(&self, trees: &[Tree], i: usize, st: &FnState) -> bool {
        // `/=` compound is still a division; `//` cannot appear (comments
        // are lexed away). Skip generics-ish context: a `/` directly after
        // `<` or before `>` does not occur in real code.
        let mut l = i;
        while l > 0 && is_chain_tree(&trees[l - 1], self.tokens) {
            l -= 1;
        }
        let mut r = i + 1;
        // Step over a compound-assignment `=`.
        if trees
            .get(r)
            .and_then(|t| t.leaf(self.tokens))
            .is_some_and(|t| t.text == "=")
        {
            r += 1;
        }
        let mut re = r;
        while re < trees.len() && is_chain_tree(&trees[re], self.tokens) {
            re += 1;
        }
        self.slice_tainted(&trees[l..i], st) || self.slice_tainted(&trees[r..re], st)
    }

    /// `.method(args)` where method has variable latency and the receiver
    /// chain or arguments are tainted. Returns the method's line.
    fn var_time_call(&self, trees: &[Tree], i: usize, st: &FnState) -> Option<u32> {
        let m = trees.get(i + 1)?.leaf(self.tokens)?;
        if !VAR_TIME_METHODS.contains(&m.text.as_str()) {
            return None;
        }
        let Tree::Group {
            delim: Delim::Paren,
            children,
            ..
        } = trees.get(i + 2)?
        else {
            return None;
        };
        let mut start = i;
        while start > 0 && is_chain_tree(&trees[start - 1], self.tokens) {
            start -= 1;
        }
        let hit = self.slice_tainted(&trees[start..i], st) || self.slice_tainted(children, st);
        hit.then_some(m.line)
    }

    /// A bracket group indexes memory when it directly follows a value
    /// expression (identifier or another group) — not a type, attribute,
    /// or macro-bang position.
    fn is_index_position(&self, trees: &[Tree], i: usize) -> bool {
        match trees.get(i.wrapping_sub(1)) {
            Some(Tree::Leaf(l)) => {
                let tok = &self.tokens[*l];
                tok.kind == TokKind::Ident
                    && !KEYWORDS.contains(&tok.text.as_str())
                    && !matches!(tok.text.as_str(), "use" | "where" | "while")
            }
            Some(Tree::Group {
                delim: Delim::Paren | Delim::Bracket,
                ..
            }) => true,
            _ => false,
        }
    }
}

/// Index of the first top-level brace group (or statement end) at or after
/// `from` — where an `if`/`while`/`match` condition ends.
fn block_start(trees: &[Tree], from: usize, tokens: &[Token]) -> usize {
    for (j, t) in trees.iter().enumerate().skip(from) {
        if t.is_group(Delim::Brace) {
            return j;
        }
        if t.leaf(tokens).is_some_and(|l| l.text == ";") {
            return j;
        }
    }
    trees.len()
}

/// Whether the `=` at `trees[i]` is part of `==`, `!=`, `<=`, `>=`, `=>`
/// rather than an assignment.
fn is_comparison(trees: &[Tree], i: usize, tokens: &[Token]) -> bool {
    let leaf_text = |j: usize| -> Option<&str> {
        trees
            .get(j)
            .and_then(|t| t.leaf(tokens))
            .map(|l| l.text.as_str())
    };
    if matches!(leaf_text(i + 1), Some("=") | Some(">")) {
        return true;
    }
    match leaf_text(i.wrapping_sub(1)) {
        Some("=") | Some("!") => true,
        // `<=` / `>=` compare; `<<=` / `>>=` assign.
        Some("<") => leaf_text(i.wrapping_sub(2)) != Some("<"),
        Some(">") => leaf_text(i.wrapping_sub(2)) != Some(">"),
        _ => false,
    }
}

/// Trees that can extend a receiver/operand chain: identifiers, numbers,
/// `.` / `:` / `?` puncts, and call/index groups.
fn is_chain_tree(t: &Tree, tokens: &[Token]) -> bool {
    match t {
        Tree::Leaf(l) => {
            let tok = &tokens[*l];
            match tok.kind {
                TokKind::Ident => {
                    matches!(tok.text.as_str(), "self" | "Self")
                        || (!KEYWORDS.contains(&tok.text.as_str())
                            && !matches!(tok.text.as_str(), "use" | "where" | "while"))
                }
                TokKind::Num => true,
                TokKind::Punct => matches!(tok.text.as_str(), "." | ":" | "?"),
                _ => false,
            }
        }
        Tree::Group {
            delim: Delim::Paren | Delim::Bracket,
            ..
        } => true,
        Tree::Group { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(Rule, u32)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        analyze(&f, Mode::Secret)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    fn relaxed(src: &str) -> Vec<(Rule, u32)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        analyze(&f, Mode::RelaxedLoad)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn secret_param_branch_is_ct001() {
        let out = findings("fn f(t: &Trace) { if t.len() > 4 { g(); } }");
        assert_eq!(out, [(Rule::CtBranch, 1)]);
    }

    #[test]
    fn public_param_branch_is_clean() {
        assert!(findings("fn f(n: usize) { if n > 4 { g(); } }").is_empty());
    }

    #[test]
    fn taint_flows_through_let_chains() {
        let out = findings(
            "fn f(t: &Trace) {\n    let n = t.events().len();\n    let m = n + 1;\n    if m > 4 { g(); }\n}",
        );
        assert_eq!(out, [(Rule::CtBranch, 4)]);
    }

    #[test]
    fn secret_index_is_ct002() {
        let out = findings("fn f(t: &Trace, lut: &[u8]) { let i = t.addr(); let _ = lut[i]; }");
        assert_eq!(out, [(Rule::CtIndex, 1)]);
    }

    #[test]
    fn array_types_and_macros_are_not_index_sinks() {
        assert!(findings(
            "fn f(t: &Trace) { let _x: [u8; 4] = [0; 4]; let v = vec![t.a()]; let _ = v; }"
        )
        .is_empty());
    }

    #[test]
    fn secret_division_is_ct003() {
        let out = findings("fn f(g: &LayerGeometry) { let _rows = g.total() / 3; }");
        assert_eq!(out, [(Rule::CtArith, 1)]);
    }

    #[test]
    fn var_time_method_on_secret_is_ct003() {
        let out = findings("fn f(g: &LayerGeometry) { let _ = g.h().div_ceil(2); }");
        assert_eq!(out, [(Rule::CtArith, 1)]);
    }

    #[test]
    fn secret_loop_bound_is_ct004() {
        let out = findings("fn f(t: &Trace) { for ev in t.events() { g(ev); } }");
        assert_eq!(out, [(Rule::CtLoop, 1)]);
    }

    #[test]
    fn while_on_secret_is_ct004() {
        let out = findings("fn f(t: &Trace) { let mut n = t.len(); while n > 0 { n -= 1; } }");
        assert_eq!(out, [(Rule::CtLoop, 1)]);
    }

    #[test]
    fn for_pattern_binding_propagates() {
        let out = findings(
            "fn f(t: &Trace) {\n    for ev in t.events() {\n        let _ = table[ev.addr()];\n    }\n}",
        );
        assert!(out.contains(&(Rule::CtLoop, 2)));
        assert!(out.contains(&(Rule::CtIndex, 3)));
    }

    #[test]
    fn match_arm_bindings_propagate() {
        let out = findings(
            "fn f(s: &Stage) {\n    match s.kind() {\n        Kind::Conv(c) => { if c > 0 { g(); } }\n        _ => {}\n    }\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 2)));
        assert!(out.contains(&(Rule::CtBranch, 3)));
    }

    #[test]
    fn match_guard_idents_do_not_become_bindings() {
        // `limit` appears in a guard of a *tainted* match; it must not be
        // treated as a new tainted binding.
        let out = findings(
            "fn f(s: &Stage, limit: u32) {\n    match s.k() {\n        n if n > limit => g(),\n        _ => {}\n    }\n    if limit > 0 { h(); }\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 2)));
        assert!(!out.contains(&(Rule::CtBranch, 6)));
    }

    #[test]
    fn closure_params_inherit_receiver_taint() {
        let out = findings(
            "fn f(t: &Trace) {\n    let hit = t.events().iter().any(|ev| {\n        if ev.is_write() { true } else { false }\n    });\n    let _ = hit;\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 3)));
    }

    #[test]
    fn field_fixpoint_catches_indirect_secret_storage() {
        // `prefix` has no secret declared type, but is assigned from a
        // secret-typed field — the file fixpoint must catch the branch.
        let src = "struct Runner<'a> { net: &'a Network, prefix: Vec<u32> }\n\
                   impl<'a> Runner<'a> {\n\
                   fn store(&mut self) { self.prefix = derive(self.net); }\n\
                   fn check(&self) { if self.prefix.is_empty() { g(); } }\n\
                   }";
        let out = findings(src);
        assert!(out.contains(&(Rule::CtBranch, 4)));
    }

    #[test]
    fn mutating_method_taints_receiver() {
        let out = findings(
            "fn f(t: &Trace) {\n    let mut out = Vec::new();\n    out.push(t.first());\n    for x in out { g(x); }\n}",
        );
        assert!(out.contains(&(Rule::CtLoop, 4)));
    }

    #[test]
    fn taint_source_marker_seeds_a_local() {
        let out = findings(
            "fn f() {\n    // taint:source\n    let key = read_key();\n    if key > 0 { g(); }\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 4)));
    }

    #[test]
    fn if_let_chain_propagates() {
        let out = findings(
            "fn f(t: &Trace) {\n    if let Some(ev) = t.first() {\n        if let Some(a) = ev.addr() {\n            let _ = lut[a];\n        }\n    }\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 2)));
        assert!(out.contains(&(Rule::CtIndex, 4)));
    }

    #[test]
    fn method_chain_index_is_found() {
        let out = findings("fn f(t: &Trace, m: &Map) { let _ = m.rows().cols[t.first().addr()]; }");
        assert_eq!(out, [(Rule::CtIndex, 1)]);
    }

    #[test]
    fn comparison_eq_is_not_an_assignment() {
        // `n == secret` must not taint `n` (only report the branch).
        let out = findings(
            "fn f(t: &Trace, n: u32) {\n    if n == t.len() { g(); }\n    if n > 0 { h(); }\n}",
        );
        assert_eq!(out, [(Rule::CtBranch, 2)]);
    }

    #[test]
    fn compound_assignment_propagates() {
        let out = findings(
            "fn f(t: &Trace) {\n    let mut acc = 0u64;\n    acc += t.len() as u64;\n    if acc > 4 { g(); }\n}",
        );
        assert!(out.contains(&(Rule::CtBranch, 4)));
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(t: &Trace) { if t.len() > 0 { g(); } }\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn relaxed_load_in_branch_is_cr004() {
        let out =
            relaxed("fn f(stop: &AtomicBool) { if stop.load(Ordering::Relaxed) { return; } }");
        assert_eq!(out, [(Rule::CrRelaxedControl, 1)]);
    }

    #[test]
    fn relaxed_load_through_binding_is_cr004() {
        let out = relaxed(
            "fn f(stop: &AtomicBool) {\n    let s = stop.load(Ordering::Relaxed);\n    while s { spin(); }\n}",
        );
        assert_eq!(out, [(Rule::CrRelaxedControl, 3)]);
    }

    #[test]
    fn acquire_load_is_not_cr004() {
        assert!(
            relaxed("fn f(stop: &AtomicBool) { if stop.load(Ordering::Acquire) { return; } }")
                .is_empty()
        );
    }

    #[test]
    fn relaxed_counter_arithmetic_is_not_cr004() {
        assert!(
            relaxed("fn f(n: &AtomicU64) { let _total = n.load(Ordering::Relaxed) + 1; }")
                .is_empty()
        );
    }

    #[test]
    fn nested_closures_propagate() {
        let out = findings(
            "fn f(t: &Trace) {\n    let v: Vec<u32> = t.rows().iter().map(|r| {\n        r.cells().iter().filter(|c| c.hot()).count() as u32\n    }).collect();\n    let _ = v;\n}",
        );
        // The inner filter closure's branch-free body yields no findings,
        // but nothing panics and no false CT001 appears.
        assert!(out.iter().all(|(r, _)| *r != Rule::CtBranch));
    }
}
