//! Workspace file discovery and the cross-file `#[cfg(test)] mod x;`
//! resolution pass.
//!
//! The linted set is every `.rs` file under the workspace's `src/` trees —
//! the root package's `src/` and each `crates/*/src/` — in sorted order so
//! reports are deterministic. `tests/`, `benches/`, and `examples/` targets
//! are test/demo code by construction and are not walked unless the caller
//! opts in (`--include-tests`, which lints them under the relaxed rule
//! set — see [`crate::rules::check_file`]); directories named `target` or
//! `fixtures` are always skipped.

use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "fixtures", ".git", "node_modules"];

/// Collects the workspace's lintable `.rs` files under `root`, sorted.
/// Returns workspace-relative forward-slash paths alongside absolute ones.
pub fn discover(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    discover_with(root, false)
}

/// [`discover`], optionally extending the walk to the workspace's test
/// trees: the root `tests/` and each crate's `tests/`, `benches/`, and
/// `examples/`.
pub fn discover_with(root: &Path, include_tests: bool) -> io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    for base in ["src", "crates"] {
        let dir = root.join(base);
        if dir.is_dir() {
            collect(&dir, root, include_tests, &mut files)?;
        }
    }
    if include_tests {
        let dir = root.join("tests");
        if dir.is_dir() {
            collect(&dir, root, include_tests, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn collect(
    dir: &Path,
    root: &Path,
    include_tests: bool,
    out: &mut Vec<(PathBuf, String)>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // Only descend into src trees (and the directories above them):
            // crates/<name>/tests, /benches, /examples hold test code and
            // join the walk only when the caller opts in.
            let rel = rel_path(&path, root);
            let is_crate_child = rel.split('/').count() == 2 && rel.starts_with("crates/");
            if is_crate_child
                || rel == "crates"
                || in_src(&rel)
                || name == "src"
                || (include_tests && in_lintable(&rel, true))
            {
                collect(&path, root, include_tests, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = rel_path(&path, root);
            if in_lintable(&rel, include_tests) {
                out.push((path, rel));
            }
        }
    }
    Ok(())
}

fn in_src(rel: &str) -> bool {
    rel.starts_with("src/") || rel.contains("/src/")
}

/// Whether `rel` belongs to a tree the walk may emit: a `src/` tree
/// always; a `tests/`/`benches/`/`examples/` tree only when the caller
/// opted into test linting.
fn in_lintable(rel: &str, include_tests: bool) -> bool {
    if in_src(rel) {
        return true;
    }
    include_tests
        && ["tests", "benches", "examples"].iter().any(|t| {
            rel.starts_with(&format!("{t}/")) || rel.contains(&format!("/{t}/")) || {
                // The directory itself (`crates/nn/tests`) during descent.
                rel == *t || rel.ends_with(&format!("/{t}"))
            }
        })
}

fn rel_path(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses every discovered file and drops the ones gated behind a
/// `#[cfg(test)] mod x;` declaration in their parent module (e.g.
/// `crates/trace/src/proptests.rs`). Returns the remaining files, parsed.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    load_workspace_with(root, false)
}

/// [`load_workspace`], optionally including the workspace's test trees.
pub fn load_workspace_with(root: &Path, include_tests: bool) -> io::Result<Vec<SourceFile>> {
    let mut parsed = Vec::new();
    for (abs, rel) in discover_with(root, include_tests)? {
        let src = fs::read_to_string(&abs)?;
        parsed.push(SourceFile::parse(&rel, &src));
    }
    let gated = gated_files(&parsed);
    Ok(parsed
        .into_iter()
        .filter(|f| !gated.contains(&f.rel_path))
        .collect())
}

/// Resolves each parent file's `gated_child_mods` to candidate child file
/// paths: for a `lib.rs`/`mod.rs`/`main.rs` parent the child lives in the
/// same directory; for `foo.rs` it lives in `foo/`.
fn gated_files(parsed: &[SourceFile]) -> BTreeSet<String> {
    let mut gated = BTreeSet::new();
    for f in parsed {
        if f.gated_child_mods.is_empty() {
            continue;
        }
        let (dir, file_name) = match f.rel_path.rsplit_once('/') {
            Some((d, n)) => (d.to_owned(), n),
            None => (String::new(), f.rel_path.as_str()),
        };
        let mod_dir = if matches!(file_name, "lib.rs" | "mod.rs" | "main.rs") {
            dir
        } else {
            format!("{dir}/{}", file_name.trim_end_matches(".rs"))
        };
        for child in &f.gated_child_mods {
            gated.insert(format!("{mod_dir}/{child}.rs"));
            gated.insert(format!("{mod_dir}/{child}/mod.rs"));
        }
    }
    gated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_module_resolution_handles_lib_and_file_parents() {
        let lib = SourceFile::parse("crates/trace/src/lib.rs", "#[cfg(test)]\nmod proptests;\n");
        let nested = SourceFile::parse("crates/nn/src/train.rs", "#[cfg(test)]\nmod golden;\n");
        let gated = gated_files(&[lib, nested]);
        assert!(gated.contains("crates/trace/src/proptests.rs"));
        assert!(gated.contains("crates/nn/src/train/golden.rs"));
    }

    #[test]
    fn in_src_filter() {
        assert!(in_src("src/lib.rs"));
        assert!(in_src("crates/nn/src/geometry.rs"));
        assert!(!in_src("crates/nn/tests/gradient_check.rs"));
        assert!(!in_src("crates/bench/benches/fig3.rs"));
    }
}
