//! Concurrency-readiness checks (CR001–CR003, SY001): structural scans
//! over the token tree for state that would block ROADMAP item 1's
//! `Send + Sync` parallel-solver refactor, lock-ordering hygiene, and raw
//! `std` concurrency primitives that bypass the model-check shims.
//!
//! CR004 (`Relaxed` loads steering control flow) is dataflow, not
//! structure, and lives in [`crate::taint`].

use crate::diag::Rule;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::taint::Finding;
use crate::tree::{build, Delim, Tree};

/// Interior-mutability types that make a holder `!Sync`.
const INTERIOR_MUT_TYPES: [&str; 5] = ["RefCell", "Cell", "UnsafeCell", "Rc", "OnceCell"];

/// CR001: `static mut` items and interior-mutable `thread_local!` state.
/// CR002: `RefCell`/`Cell`/`Rc`/… anywhere else in non-test code.
///
/// Both come from one walk so a `Cell` inside a `thread_local!` reports
/// once, as CR001.
#[must_use]
pub fn mutable_state_findings(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if file.whole_file_excluded {
        return out;
    }
    let trees = build(&file.tokens);
    walk_mutable_state(&trees, file, &mut out);
    out
}

fn walk_mutable_state(trees: &[Tree], file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let mut i = 0usize;
    while i < trees.len() {
        if let Tree::Leaf(l) = &trees[i] {
            let tok = &tokens[*l];
            if !file.in_test_code(*l) && tok.kind == TokKind::Ident {
                match tok.text.as_str() {
                    // `static mut NAME: …`
                    "static"
                        if trees
                            .get(i + 1)
                            .and_then(|t| t.leaf(tokens))
                            .is_some_and(|n| n.text == "mut") =>
                    {
                        out.push(Finding {
                            rule: Rule::CrStaticMut,
                            line: tok.line,
                            message: "`static mut` global state blocks the Send + Sync \
                                      refactor (CR001)"
                                .to_owned(),
                        });
                    }
                    // `thread_local! { … Cell … }`
                    "thread_local"
                        if trees
                            .get(i + 1)
                            .and_then(|t| t.leaf(tokens))
                            .is_some_and(|n| n.text == "!") =>
                    {
                        if let Some(Tree::Group { children, .. }) = trees.get(i + 2) {
                            let interior = crate::tree::flatten(children)
                                .into_iter()
                                .any(|t| INTERIOR_MUT_TYPES.contains(&tokens[t].text.as_str()));
                            if interior {
                                out.push(Finding {
                                    rule: Rule::CrStaticMut,
                                    line: tok.line,
                                    message: "interior-mutable thread_local state diverges \
                                              silently across the planned worker pool (CR001)"
                                        .to_owned(),
                                });
                            }
                        }
                        // The macro body is CR001's, not CR002's.
                        i += 3;
                        continue;
                    }
                    // `use std::cell::RefCell;` — report the usage site,
                    // not the import.
                    "use" => {
                        while i < trees.len() {
                            if trees[i].leaf(tokens).is_some_and(|t| t.text == ";") {
                                break;
                            }
                            i += 1;
                        }
                    }
                    name if INTERIOR_MUT_TYPES.contains(&name) => {
                        out.push(Finding {
                            rule: Rule::CrInteriorMut,
                            line: tok.line,
                            message: format!(
                                "`{name}` makes its holder !Sync, blocking the Send + Sync \
                                 refactor (CR002)"
                            ),
                        });
                    }
                    _ => {}
                }
            }
        } else if let Tree::Group { children, .. } = &trees[i] {
            walk_mutable_state(children, file, out);
        }
        i += 1;
    }
}

/// CR003: a lock acquired while another guard is live in the same scope,
/// or two acquisitions in one statement.
///
/// Acquisitions are `.lock(…)` / a free `lock(…)` call, and empty-argument
/// `.read()` / `.write()` (the argument requirement keeps `io::Read::read`
/// out). A `let`-bound acquisition keeps its guard live to the end of the
/// enclosing block; `drop(guard)` is not modeled — narrowing a guard's
/// scope with a block is the fix this rule pushes toward.
#[must_use]
pub fn lock_order_findings(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if file.whole_file_excluded {
        return out;
    }
    let trees = build(&file.tokens);
    walk_lock_block(&trees, file, 0, &mut out);
    out
}

/// Walks one block's statements, tracking how many guards are live.
fn walk_lock_block(trees: &[Tree], file: &SourceFile, live_in: usize, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let mut live = live_in;
    let mut start = 0usize;
    for i in 0..=trees.len() {
        let at_end = i == trees.len();
        let is_semi = !at_end && trees[i].leaf(tokens).is_some_and(|l| l.text == ";");
        if !at_end && !is_semi {
            continue;
        }
        let stmt = &trees[start..i];
        start = i + 1;
        if stmt.is_empty() {
            continue;
        }
        let mut acqs = 0usize;
        walk_lock_stmt(stmt, file, live, &mut acqs, out);
        let is_let = stmt[0].leaf(tokens).is_some_and(|l| l.text == "let");
        if is_let && acqs > 0 {
            live += 1;
        }
    }
}

/// Walks one statement's trees; nested brace groups start child blocks at
/// the current live count.
fn walk_lock_stmt(
    stmt: &[Tree],
    file: &SourceFile,
    live: usize,
    acqs: &mut usize,
    out: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    for (i, t) in stmt.iter().enumerate() {
        match t {
            Tree::Leaf(l) => {
                let tok = &tokens[*l];
                if tok.kind != TokKind::Ident || file.in_test_code(*l) {
                    continue;
                }
                let prev = i
                    .checked_sub(1)
                    .and_then(|p| stmt[p].leaf(tokens))
                    .map(|p| p.text.as_str());
                let next_group = matches!(
                    stmt.get(i + 1),
                    Some(Tree::Group {
                        delim: Delim::Paren,
                        ..
                    })
                );
                let next_empty = matches!(
                    stmt.get(i + 1),
                    Some(Tree::Group { delim: Delim::Paren, children, .. })
                        if children.is_empty()
                );
                let is_acq = match tok.text.as_str() {
                    // `fn lock(…)` defines the wrapper; skip it.
                    "lock" => next_group && prev != Some("fn"),
                    "read" | "write" => next_empty && prev == Some("."),
                    _ => false,
                };
                if is_acq {
                    if live + *acqs > 0 {
                        out.push(Finding {
                            rule: Rule::CrLockOrder,
                            line: tok.line,
                            message: "lock acquired while another guard is live — nested \
                                      acquisition needs a documented order (CR003)"
                                .to_owned(),
                        });
                    }
                    *acqs += 1;
                }
            }
            Tree::Group {
                delim: Delim::Brace,
                children,
                ..
            } => {
                walk_lock_block(children, file, live + *acqs, out);
            }
            Tree::Group { children, .. } => {
                walk_lock_stmt(children, file, live, acqs, out);
            }
        }
    }
}

/// SY001: direct `std::sync` / `std::thread` paths in non-test code.
///
/// The `cnnre_model::sync` / `cnnre_model::thread` shims are transparent
/// `std` re-exports in normal builds, so the only thing a raw `std` path
/// buys in a shim-scoped crate is invisibility to the model checker: the
/// interleavings that lock or thread creates are never explored. The
/// lexer emits single-character puncts, so `std::sync` arrives as the
/// four code tokens `std` `:` `:` `sync`.
#[must_use]
pub fn raw_sync_findings(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if file.whole_file_excluded {
        return out;
    }
    let code = file.code_indices();
    for w in code.windows(4) {
        let text = |i: usize| file.tokens[i].text.as_str();
        let tail = text(w[3]);
        if text(w[0]) == "std"
            && text(w[1]) == ":"
            && text(w[2]) == ":"
            && (tail == "sync" || tail == "thread")
            && !file.in_test_code(w[0])
        {
            out.push(Finding {
                rule: Rule::RawSync,
                line: file.tokens[w[0]].line,
                message: format!(
                    "direct `std::{tail}` bypasses the model-check shims — the \
                     interleavings it creates are never explored; use \
                     `cnnre_model::{tail}` (a transparent `std` re-export in \
                     normal builds) (SY001)"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mutable(src: &str) -> Vec<(Rule, u32)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        mutable_state_findings(&f)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    fn locks(src: &str) -> Vec<(Rule, u32)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        lock_order_findings(&f)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn static_mut_is_cr001() {
        assert_eq!(
            mutable("static mut CACHE: Option<u32> = None;"),
            [(Rule::CrStaticMut, 1)]
        );
    }

    #[test]
    fn plain_static_is_clean() {
        assert!(mutable("static N: u32 = 0;").is_empty());
    }

    #[test]
    fn interior_mut_thread_local_is_cr001_only() {
        let out = mutable("thread_local! { static T: Cell<u64> = Cell::new(0); }");
        assert_eq!(out, [(Rule::CrStaticMut, 1)]);
    }

    #[test]
    fn plain_thread_local_is_clean() {
        assert!(mutable("thread_local! { static T: u64 = 0; }").is_empty());
    }

    #[test]
    fn refcell_field_is_cr002() {
        let out = mutable("struct Oracle { memo: RefCell<u32> }");
        assert_eq!(out, [(Rule::CrInteriorMut, 1)]);
    }

    #[test]
    fn use_import_is_not_reported() {
        let out = mutable("use std::cell::RefCell;\nstruct S { m: RefCell<u32> }");
        assert_eq!(out, [(Rule::CrInteriorMut, 2)]);
    }

    #[test]
    fn test_code_interior_mut_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { struct S { c: Cell<u32> } }";
        assert!(mutable(src).is_empty());
    }

    #[test]
    fn nested_lock_is_cr003() {
        let out = locks(
            "fn f() {\n    let a = reg.lock();\n    let b = sinks.lock();\n    use_both(a, b);\n}",
        );
        assert_eq!(out, [(Rule::CrLockOrder, 3)]);
    }

    #[test]
    fn sequential_scoped_locks_are_clean() {
        let out = locks(
            "fn f() {\n    { let a = reg.lock(); use_a(a); }\n    { let b = sinks.lock(); use_b(b); }\n}",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn double_acquisition_in_one_statement_is_cr003() {
        let out = locks("fn f() { merge(reg.lock(), sinks.lock()); }");
        assert_eq!(out, [(Rule::CrLockOrder, 1)]);
    }

    #[test]
    fn temporary_guard_does_not_outlive_its_statement() {
        let out = locks("fn f() {\n    reg.lock().push(1);\n    sinks.lock().push(2);\n}");
        assert!(out.is_empty());
    }

    #[test]
    fn free_fn_lock_wrapper_counts() {
        let out = locks("fn f() {\n    let a = lock(&q);\n    let b = lock(&r);\n    go(a, b);\n}");
        assert_eq!(out, [(Rule::CrLockOrder, 3)]);
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        assert!(locks("fn f() { let n = file.read(&mut buf); use_it(n); }").is_empty());
    }

    #[test]
    fn rwlock_empty_read_counts() {
        let out =
            locks("fn f() {\n    let a = map.read();\n    let b = idx.write();\n    go(a, b);\n}");
        assert_eq!(out, [(Rule::CrLockOrder, 3)]);
    }

    fn raw_sync(src: &str) -> Vec<(Rule, u32)> {
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        raw_sync_findings(&f)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn std_sync_import_is_sy001() {
        assert_eq!(raw_sync("use std::sync::Mutex;"), [(Rule::RawSync, 1)]);
    }

    #[test]
    fn std_thread_path_is_sy001() {
        assert_eq!(
            raw_sync("fn f() { std::thread::spawn(|| {}); }"),
            [(Rule::RawSync, 1)]
        );
    }

    #[test]
    fn shim_paths_and_other_std_are_clean() {
        assert!(raw_sync("use cnnre_model::sync::Mutex;\nuse std::time::Instant;").is_empty());
    }

    #[test]
    fn test_code_raw_sync_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { use std::sync::Mutex; }";
        assert!(raw_sync(src).is_empty());
    }

    #[test]
    fn doc_comment_mention_is_clean() {
        assert!(raw_sync("/// Wraps `std::thread::spawn`.\nfn f() {}").is_empty());
    }
}
