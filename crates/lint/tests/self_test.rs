//! Fixture-based self-tests: each `tests/fixtures/<name>/` directory is a
//! miniature workspace seeding one violation class. Every fixture is linted
//! twice — through the library (`lint_workspace`) and through the built
//! `cnnre-lint` binary — so both the rule passes and the exit-code contract
//! stay covered.

use cnnre_lint::{lint_workspace, lint_workspace_with, Rule};
use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Rule> {
    let report = lint_workspace(&fixture(name)).expect("fixture tree readable");
    report.diagnostics.iter().map(|d| d.rule).collect()
}

fn run_binary(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cnnre-lint"))
        .args(args)
        .output()
        .expect("cnnre-lint binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("terminated by exit, not signal")
}

// --- library-level: each fixture reports exactly its seeded class -------

#[test]
fn wallclock_fixture_reports_both_clock_types_and_spares_tests() {
    let rules = lint_fixture("wallclock");
    assert_eq!(rules, [Rule::Wallclock, Rule::Wallclock]);
}

#[test]
fn hash_iter_fixture_reports_every_hashmap_mention() {
    let rules = lint_fixture("hash_iter");
    assert!(rules.len() >= 2, "use + construction sites: {rules:?}");
    assert!(rules.iter().all(|r| *r == Rule::HashIter));
}

#[test]
fn panic_fixture_reports_unwrap_expect_and_macro() {
    let rules = lint_fixture("panic_rule");
    assert_eq!(rules, [Rule::Panic, Rule::Panic, Rule::Panic]);
}

#[test]
fn cast_fixture_reports_narrowing_and_rounder_not_widening() {
    let rules = lint_fixture("cast");
    assert_eq!(rules, [Rule::Cast, Rule::Cast]);
}

#[test]
fn atomic_fixture_reports_only_the_unjustified_ordering() {
    let rules = lint_fixture("atomic");
    assert_eq!(rules, [Rule::AtomicOrdering]);
}

#[test]
fn allow_syntax_fixture_reports_reasonless_and_unknown_directives() {
    let rules = lint_fixture("allow_syntax");
    assert_eq!(rules, [Rule::AllowSyntax, Rule::AllowSyntax]);
}

#[test]
fn float_eq_fixture_reports_literal_and_cast_not_ordering() {
    assert_eq!(lint_fixture("float_eq"), [Rule::FloatEq, Rule::FloatEq]);
}

#[test]
fn metric_name_fixture_reports_each_malformed_literal() {
    assert_eq!(
        lint_fixture("metric_name"),
        [
            Rule::MetricName,
            Rule::MetricName,
            Rule::MetricName,
            Rule::MetricName
        ]
    );
}

#[test]
fn clean_fixture_reports_nothing() {
    assert_eq!(lint_fixture("clean"), []);
}

// --- CT/CR fixtures: each seeds exactly its code ------------------------

#[test]
fn ct001_fixture_reports_exactly_one_secret_branch() {
    assert_eq!(lint_fixture("ct001"), [Rule::CtBranch]);
}

#[test]
fn ct002_fixture_reports_exactly_one_secret_index() {
    // The chained public `[0]` index must not add a second finding.
    assert_eq!(lint_fixture("ct002"), [Rule::CtIndex]);
}

#[test]
fn ct003_fixture_reports_exactly_one_variable_time_division() {
    assert_eq!(lint_fixture("ct003"), [Rule::CtArith]);
}

#[test]
fn ct004_fixture_reports_exactly_one_secret_loop_via_taint_mark() {
    // The fixture's source is a `// taint:source` annotation, not a
    // secret-typed parameter — covers the marker path end-to-end.
    assert_eq!(lint_fixture("ct004"), [Rule::CtLoop]);
}

#[test]
fn cr001_fixture_reports_static_mut_and_spares_plain_static() {
    assert_eq!(lint_fixture("cr001"), [Rule::CrStaticMut]);
}

#[test]
fn cr002_fixture_reports_the_field_not_the_import() {
    assert_eq!(lint_fixture("cr002"), [Rule::CrInteriorMut]);
}

#[test]
fn cr003_fixture_reports_nested_guard_and_spares_scoped_pair() {
    assert_eq!(lint_fixture("cr003"), [Rule::CrLockOrder]);
}

#[test]
fn cr004_fixture_reports_relaxed_steered_branch_not_plain_load() {
    assert_eq!(lint_fixture("cr004"), [Rule::CrRelaxedControl]);
}

#[test]
fn sy001_fixture_reports_raw_sync_and_thread_not_shims_or_tests() {
    // The `std::sync` import and `std::thread::spawn` fire; the
    // `cnnre_model::sync` import, the allowed `std::thread::scope`, and
    // the `#[cfg(test)]` use do not.
    assert_eq!(lint_fixture("sy001"), [Rule::RawSync, Rule::RawSync]);
}

#[test]
fn stale_allow_fixture_reports_the_dead_directive_only() {
    assert_eq!(lint_fixture("stale_allow"), [Rule::StaleAllow]);
}

#[test]
fn parser_edges_fixture_is_clean_under_the_full_ct_rule_set() {
    // Nested closures, method-chain indexing, and `if let` chains over
    // public data in a CT-scoped file: no false positives, no parse panic.
    assert_eq!(lint_fixture("parser_edges"), []);
}

// --- report ordering is deterministic: path, then line, then rule -------

#[test]
fn report_ordering_is_path_then_line_then_rule() {
    for name in ["include_tests", "wallclock", "metric_name", "cr003"] {
        let report = lint_workspace_with(&fixture(name), true).expect("fixture readable");
        let keys: Vec<(&str, u32, Rule)> = report
            .diagnostics
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(
            keys, sorted,
            "{name} report out of (path, line, rule) order"
        );
    }
}

#[test]
fn repeated_runs_produce_identical_reports() {
    let key = |name: &str| {
        lint_workspace_with(&fixture(name), true)
            .expect("fixture readable")
            .diagnostics
            .iter()
            .map(|d| (d.file.clone(), d.line, d.rule, d.message.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(key("include_tests"), key("include_tests"));
}

#[test]
fn include_tests_fixture_is_clean_under_the_default_walk() {
    // Without --include-tests the violating files are never scanned.
    assert_eq!(lint_fixture("include_tests"), []);
}

#[test]
fn include_tests_applies_the_relaxed_rule_set() {
    let report = lint_workspace_with(&fixture("include_tests"), true).expect("fixture readable");
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    // The crate test's `Instant::now` and the root golden test's `HashMap`
    // mentions fire; its `unwrap()` and exact float compare do not.
    assert_eq!(
        rules,
        [
            Rule::Wallclock,
            Rule::HashIter,
            Rule::HashIter,
            Rule::HashIter
        ]
    );
    let mut files: Vec<&str> = report.diagnostics.iter().map(|d| d.file.as_str()).collect();
    files.dedup();
    assert_eq!(files, ["crates/x/tests/integration.rs", "tests/golden.rs"]);
}

// --- binary-level: exit codes and report formats ------------------------

#[test]
fn binary_exits_nonzero_on_each_seeded_fixture() {
    for name in [
        "wallclock",
        "hash_iter",
        "panic_rule",
        "cast",
        "atomic",
        "allow_syntax",
        "float_eq",
        "metric_name",
        "ct001",
        "ct002",
        "ct003",
        "ct004",
        "cr001",
        "cr002",
        "cr003",
        "cr004",
        "sy001",
        "stale_allow",
    ] {
        let root = fixture(name);
        let out = run_binary(&["--root", &root.display().to_string()]);
        assert_eq!(exit_code(&out), 1, "fixture {name} must fail the gate");
    }
}

#[test]
fn binary_include_tests_flag_reaches_the_test_trees() {
    let root = fixture("include_tests").display().to_string();
    // Default walk: clean.
    assert_eq!(exit_code(&run_binary(&["--root", &root])), 0);
    // Opted in: the test-tree violations fail the gate.
    let out = run_binary(&["--root", &root, "--include-tests"]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wallclock"), "got: {stdout}");
    assert!(stdout.contains("hash-iter"), "got: {stdout}");
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let root = fixture("clean");
    let out = run_binary(&["--root", &root.display().to_string()]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "got: {stdout}");
}

#[test]
fn binary_human_report_names_the_rule_and_file() {
    let root = fixture("panic_rule");
    let out = run_binary(&["--root", &root.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("panic"), "got: {stdout}");
    assert!(stdout.contains("crates/nn/src/lib.rs"), "got: {stdout}");
}

#[test]
fn binary_json_report_is_machine_readable_and_written_to_out() {
    let root = fixture("cast");
    let out_file = std::env::temp_dir().join("cnnre_lint_selftest_report.json");
    let out = run_binary(&[
        "--root",
        &root.display().to_string(),
        "--format",
        "json",
        "--out",
        &out_file.display().to_string(),
    ]);
    assert_eq!(exit_code(&out), 1);
    let report = std::fs::read_to_string(&out_file).expect("--out wrote the report");
    let _ = std::fs::remove_file(&out_file);
    assert!(report.contains("\"tool\": \"cnnre-lint\""), "got: {report}");
    assert!(report.contains("\"violations\": 2"), "got: {report}");
    assert!(report.contains("\"rule\": \"cast\""), "got: {report}");
    // stdout carries the same report for piping.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"tool\": \"cnnre-lint\""), "got: {stdout}");
}

#[test]
fn binary_list_rules_covers_every_rule() {
    let out = run_binary(&["--list-rules"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in Rule::ALL {
        assert!(stdout.contains(rule.name()), "missing {}", rule.name());
    }
}

#[test]
fn binary_rejects_unknown_flags_with_usage_error() {
    let out = run_binary(&["--frobnicate"]);
    assert_eq!(exit_code(&out), 2);
}
