//! Fixture: metric-name literals that violate the DESIGN.md §10 schema.

pub fn unknown_prefix() {
    cnnre_obs::counter("mystery.queries").inc();
}

pub fn single_segment() {
    cnnre_obs::series("candidates").push(1.0);
}

pub fn wrong_ns_suffix() {
    cnnre_obs::profile::count("trace.segment_ns", 1.0);
}

pub fn malformed_span_fragment() {
    let _s = cnnre_obs::span("Stage One");
}

pub fn valid_names_do_not_fire() {
    // Catalogue names and well-formed span fragments must pass.
    cnnre_obs::counter("oracle.queries").inc();
    cnnre_obs::series("solver.candidates_per_layer").push(3.0);
    cnnre_obs::profile::count("solver.progress.root_pct", 50.0);
    cnnre_obs::counter("events.emitted").inc();
    cnnre_obs::gauge("events.clients").set(1.0);
    cnnre_obs::counter("viz.snapshots.written").inc();
    let _a = cnnre_obs::span("plan");
    let _b = cnnre_obs::span("trace.segment");
    let _c = cnnre_obs::span_labelled("stage", "conv1");
}

pub fn dynamic_names_are_unchecked(name: &str) {
    cnnre_obs::counter(name).inc();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        cnnre_obs::counter("scratch").inc();
    }
}
