//! Seeds exactly one CR002: an interior-mutability field on a solver
//! path. The `use` import must not add a second finding (the rule reports
//! usage sites, not imports).

use std::cell::RefCell;

pub struct Memo {
    cache: RefCell<u64>,
}
