//! Fixture: float equality comparisons outside test code.

pub fn literal_operand(x: f32) -> bool {
    x == 0.0
}

pub fn cast_result_operand(x: u32, y: f64) -> bool {
    x as f64 != y
}

pub fn ordering_is_fine(x: f32) -> bool {
    // Ordering comparisons are well-defined and must NOT be reported.
    x <= 0.5 && x >= -0.5
}

pub fn integers_are_fine(x: usize) -> bool {
    x == 1usize || x == 0xAE
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compare_is_the_test_idiom() {
        assert!(super::literal_operand(0.0));
        assert!(1.5f64 == 1.5f64);
    }
}
