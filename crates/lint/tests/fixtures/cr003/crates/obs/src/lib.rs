//! Seeds exactly one CR003: a second lock acquired while the first guard
//! is still live. The scoped pair below is the fixed idiom and must not
//! fire.

fn use_both(a: usize, b: usize) -> usize {
    a + b
}

pub fn snapshot(reg: &Registry) -> usize {
    let counters = reg.counters.lock();
    let gauges = reg.gauges.lock();
    use_both(counters.len(), gauges.len())
}

pub fn snapshot_scoped(reg: &Registry) -> usize {
    let a = {
        let counters = reg.counters.lock();
        counters.len()
    };
    let b = {
        let gauges = reg.gauges.lock();
        gauges.len()
    };
    use_both(a, b)
}
