//! Seeds exactly one stale-allow: a well-formed directive (known rule,
//! non-empty reason) that suppresses nothing. The used directive below
//! must not fire.

// lint:allow(panic): guarded by the caller
pub fn add(a: u64, b: u64) -> u64 {
    a + b
}

pub fn head(v: &[u64]) -> u64 {
    // lint:allow(panic): fixture input is never empty
    v.first().copied().unwrap()
}
