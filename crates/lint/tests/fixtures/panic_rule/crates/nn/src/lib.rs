//! Fixture: panics in library non-test code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passed digits")
}

pub fn unreachable_branch(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => panic!("unsupported"),
    }
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely; this must NOT be reported.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
