//! Seeds exactly one CT004: a loop whose trip count derives from a
//! `// taint:source`-marked binding rather than a secret-typed parameter,
//! so the annotation source path is covered end-to-end.

pub fn burst_cycles(depths: &[u64]) -> u64 {
    // taint:source
    let layers = depths.len();
    let mut total = 0u64;
    for _ in 0..layers {
        total += 7;
    }
    total
}
