//! Seeds exactly one CR001: a `static mut` global on a solver path. The
//! plain `static` below must not fire.

static LIMIT: u64 = 64;
static mut HITS: u64 = 0;

pub fn limit() -> u64 {
    LIMIT
}
