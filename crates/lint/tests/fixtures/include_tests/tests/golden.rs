//! Fixture: a root golden test iterating a HashMap — flagged even under
//! the relaxed rule set, because golden output depends on iteration order.

use std::collections::HashMap;

#[test]
fn golden_snapshot() {
    let m: HashMap<u32, u32> = HashMap::new();
    assert!(m.is_empty());
}
