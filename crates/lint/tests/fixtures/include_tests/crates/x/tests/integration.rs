//! Fixture: an integration test that reads the wall clock (still flagged
//! under the relaxed rule set) and unwraps (which is fine in tests).

#[test]
fn measures_something() {
    let start = std::time::Instant::now();
    let v: Option<u64> = Some(3);
    assert!(v.unwrap() == 3 && 0.5f32 == 0.5f32);
    let _ = start;
}
