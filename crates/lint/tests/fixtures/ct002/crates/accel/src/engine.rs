//! Seeds exactly one CT002: a slice indexed by a value flowing from a
//! secret-typed parameter through a method chain. The trailing `[0]`
//! index is public and must not produce a second finding.

pub fn output_activation(net: &Network, acts: &[Vec<u64>]) -> u64 {
    let idx = net.output().index();
    acts[idx][0]
}
