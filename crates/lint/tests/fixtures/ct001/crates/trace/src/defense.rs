//! Seeds exactly one CT001: a branch whose condition derives from a
//! secret-typed parameter, phrased as an `if let` so the fixture also
//! exercises pattern-binding propagation.

pub fn first_is_write(trace: &Trace) -> bool {
    if let Some(ev) = trace.first() {
        return ev.is_write();
    }
    false
}
