//! Fixture: malformed suppression directives.

pub fn reasonless(xs: &[u32]) -> u32 {
    // lint:allow(panic)
    *xs.first().unwrap()
}

pub fn unknown_rule() -> u32 {
    // lint:allow(made-up-rule): this rule does not exist
    7
}
