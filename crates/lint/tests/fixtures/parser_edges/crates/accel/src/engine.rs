//! Parser stress under the full CT rule set: nested closures, method-chain
//! indexing, and `if let` chains — all on public data, so the taint engine
//! must report nothing despite the gnarly syntax.

pub fn tile_plan(sizes: &[usize]) -> Vec<usize> {
    let grow = |base: usize| move |extra: usize| base + extra;
    let add2 = grow(2);
    sizes
        .iter()
        .map(|&s| {
            let pick = |xs: &[usize]| xs[s.min(xs.len() - 1)];
            pick(&[1, 2, 4]) + add2(s)
        })
        .collect()
}

pub fn first_small_even(vals: &[u64]) -> u64 {
    if let Some(v) = vals.iter().find(|v| **v % 2 == 0) {
        if let Ok(w) = u32::try_from(*v) {
            return u64::from(w);
        }
    }
    0
}
