//! Seeds exactly one CR004: an `Ordering::Relaxed` load steering an `if`.
//! The plain counter read below feeds no condition and must not fire.

use cnnre_model::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn emit_if_enabled(flag: &AtomicBool, sink: &mut Vec<u64>) {
    let on = flag.load(Ordering::Relaxed);
    if on {
        sink.push(1);
    }
}

pub fn sample(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
