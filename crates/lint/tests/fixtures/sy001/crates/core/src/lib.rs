//! Seeds exactly two SY001s: a raw `std::sync` import and a raw
//! `std::thread` spawn. The shim imports, the justified allow, and the
//! test-module use below must NOT fire.

use std::sync::Mutex;

use cnnre_model::sync::Arc;

pub fn spawn_worker() {
    std::thread::spawn(|| {});
}

pub fn spawn_scoped() {
    // lint:allow(raw-sync): scoped thread API has no shim equivalent yet
    std::thread::scope(|_| {});
}

#[cfg(test)]
mod tests {
    use std::sync::RwLock;
}
