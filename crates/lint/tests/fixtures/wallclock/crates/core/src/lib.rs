//! Fixture: wall-clock read on a deterministic attack path.

pub fn elapsed_badly() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn stamp_badly() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

#[cfg(test)]
mod tests {
    // Test code may read the clock freely; this must NOT be reported.
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
