//! Fixture: unjustified strong atomic ordering in obs.

use cnnre_model::sync::atomic::{AtomicU64, Ordering};

pub static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump_strongly() {
    COUNTER.fetch_add(1, Ordering::SeqCst);
}

pub fn bump_relaxed() {
    // Relaxed never needs justification; this must NOT be reported.
    COUNTER.fetch_add(1, Ordering::Relaxed);
}

pub fn publish_justified() {
    // Release pairs with the Acquire load in the reader to publish the
    // snapshot; an adjacent comment like this one satisfies the rule.
    COUNTER.store(0, Ordering::Release);
}
