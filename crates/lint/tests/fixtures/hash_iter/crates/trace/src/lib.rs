//! Fixture: hash-ordered container on a deterministic export path.

use std::collections::HashMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // Iteration order leaks straight into the output.
    counts.into_iter().collect()
}
