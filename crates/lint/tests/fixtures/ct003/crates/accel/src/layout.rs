//! Seeds exactly one CT003: a variable-latency division whose operand
//! flows from a secret-typed parameter via a field read.

pub fn row_blocks(geo: &LayerGeometry) -> u64 {
    let width = geo.width;
    width / 4
}
