//! Fixture: narrowing and float-rounder casts in geometry arithmetic.

pub fn narrow(x: u64) -> u32 {
    x as u32
}

pub fn rounder(x: f64) -> u64 {
    x.sqrt() as u64
}

pub fn widen_is_fine(x: u32) -> u64 {
    // Widening casts are sound and must NOT be reported.
    x as u64
}
