//! Fixture: a file every rule passes on, including a well-formed
//! suppression directive.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(panic): fixture exercises a valid suppression; callers
    // guarantee xs is non-empty
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[3]), 3);
    }
}
