//! `cnnre` — command-line driver for the accelerator simulator and the
//! reverse-engineering attacks.
//!
//! ```console
//! $ cnnre trace lenet                 # run a model, print trace statistics
//! $ cnnre trace alexnet --csv out.csv # ... and dump the trace for plotting
//! $ cnnre analyze out.csv --input 227x3 --classes 10  # attack a recorded trace
//! $ cnnre attack-structure lenet      # recover candidate structures
//! $ cnnre attack-weights              # steal a conv layer's w/b ratios
//! $ cnnre defend lenet                # show the ORAM defense
//! ```
//!
//! Models: `lenet`, `convnet`, `alexnet`, `squeezenet`, `vgg11`, `vgg16`,
//! `resnet`, `inception` (optionally `model/DIV` for depth-scaled variants,
//! e.g. `alexnet/8`; the VGGs clamp to at least /8 to keep traces
//! tractable).

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::attacks::weights::{
    recover_ratios, recover_ratios_parallel, AcceleratorOracle, FunctionalOracle, LayerGeometry,
    MergedOrder, RecoveryConfig,
};
use cnn_reveng::nn::layer::{Conv2d, PoolKind};
use cnn_reveng::nn::models;
use cnn_reveng::nn::Network;
use cnn_reveng::tensor::{init, Shape3, Shape4};
use cnn_reveng::trace::defense::{obfuscate, OramConfig};
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags, accepted by every subcommand and stripped before
    // dispatch. `--metrics` turns the otherwise-free instrumentation on;
    // `--profile-out` additionally records the full span-tree timeline.
    let metrics_path = take_flag_value(&mut args, "--metrics");
    let profile_path = take_flag_value(&mut args, "--profile-out");
    let events_path = take_flag_value(&mut args, "--events-out");
    let events_tcp = take_flag_value(&mut args, "--events-tcp");
    let serve_obs = take_flag_value(&mut args, "--serve-obs");
    let serve_obs_hold = take_bool_flag(&mut args, "--serve-obs-hold");
    if serve_obs_hold && serve_obs.is_none() {
        eprintln!("--serve-obs-hold needs --serve-obs ADDR");
        std::process::exit(2);
    }
    if let Some(threads) = take_flag_value(&mut args, "--threads") {
        // Installed before any config is built, so `SolverConfig::default`
        // and `RecoveryConfig::default` pick the worker count up. Attack
        // output and recorded artifacts are byte-identical at any thread
        // count (DESIGN.md §13); only wall clock changes.
        match threads.parse::<usize>() {
            Ok(n) if n >= 1 => {
                cnn_reveng::attacks::exec::set_default_threads(n);
            }
            _ => {
                eprintln!("--threads needs a positive integer worker count");
                std::process::exit(2);
            }
        }
    }
    let profile_clock = match take_flag_value(&mut args, "--profile-clock") {
        Some(v) => match cnnre_obs::profile::ClockDomain::parse(&v) {
            Some(c) => c,
            None => {
                eprintln!("unknown profile clock '{v}' (wall|cycles|both)");
                std::process::exit(2);
            }
        },
        None => cnnre_obs::profile::ClockDomain::Both,
    };
    if let Some(level) = take_flag_value(&mut args, "--log-level") {
        match cnnre_obs::log::Level::parse(&level) {
            Some(Some(l)) => cnnre_obs::log::set_level(l),
            Some(None) => cnnre_obs::log::set_off(),
            None => {
                eprintln!("unknown log level '{level}' (error|warn|info|debug|trace|off)");
                std::process::exit(2);
            }
        }
    }
    if metrics_path.is_some() || profile_path.is_some() {
        cnnre_obs::set_enabled(true);
    }
    if profile_path.is_some() {
        cnnre_obs::profile::set_enabled(true);
    }
    if events_path.is_some() || events_tcp.is_some() {
        // Streaming events also records the events.* counters.
        cnnre_obs::set_enabled(true);
        cnnre_obs::stream::set_enabled(true);
        if events_path.is_some() {
            cnnre_obs::stream::set_record(true);
        }
        if let Some(addr) = &events_tcp {
            // A failed connect degrades to recording-only (if requested):
            // the attack must never depend on the viewer being up.
            if let Err(e) = cnnre_obs::stream::connect(addr) {
                eprintln!("cannot connect event stream to {addr}: {e}");
            }
        }
    }
    // The live scrape server wants every signal source on: metrics (done
    // by obsd::serve itself), the profiler ring for /profile, and the
    // recorded event stream for /events replay.
    let mut obs_daemon = match &serve_obs {
        Some(addr) => {
            cnnre_obs::profile::set_enabled(true);
            cnnre_obs::stream::set_enabled(true);
            cnnre_obs::stream::set_record(true);
            match cnn_reveng::attacks::obsd::serve(addr) {
                Ok(d) => Some(d),
                Err(e) => {
                    eprintln!("cannot serve observability on {addr}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };
    let code = match args.first().map(String::as_str) {
        Some("trace") => cmd_trace(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        // `attack` is the short alias for the headline structure attack.
        Some("attack" | "attack-structure") => cmd_attack_structure(&args[1..]),
        Some("attack-weights") => cmd_attack_weights(&args[1..]),
        Some("defend") => cmd_defend(&args[1..]),
        Some("obs-probe") => cmd_obs_probe(&args[1..]),
        Some("--list-metrics" | "list-metrics") => {
            print!("{}", cnnre_obs::catalog::render_table());
            0
        }
        Some("help") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            print_usage();
            2
        }
    };
    if let Some(path) = profile_path {
        // The timeline export: Chrome Trace Event JSON by default, folded
        // flamegraph stacks when the path says so. The cycle-domain track
        // is synthesized from attached cycles, so it is byte-deterministic
        // across identical seeded runs; the wall track is not.
        let dropped = cnnre_obs::profile::dropped();
        let events = cnnre_obs::profile::take();
        let rendered = if path.ends_with(".folded") || path.ends_with(".txt") {
            cnnre_obs::profile::folded_stacks(&events, profile_clock)
        } else {
            cnnre_obs::profile::chrome_trace(&events, profile_clock)
        };
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("cannot write profile to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "profile written to {path} ({} events, {dropped} dropped)",
            events.len()
        );
    }
    if let Some(path) = events_path {
        let bytes = cnnre_obs::stream::take_recorded_bytes();
        let dropped = cnnre_obs::stream::dropped();
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("cannot write events to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "events written to {path} ({} bytes, {dropped} dropped)",
            bytes.len()
        );
    }
    if events_tcp.is_some() {
        // Give live clients a moment to drain before the process exits.
        cnnre_obs::stream::flush(500);
    }
    if let Some(path) = metrics_path {
        // Deterministic export: wall-clock metrics are excluded so two
        // identical seeded runs write byte-identical files.
        let snapshot = cnnre_obs::global().snapshot();
        if let Err(e) = snapshot.write_json(std::path::Path::new(&path), false) {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
    if let Some(daemon) = &obs_daemon {
        if serve_obs_hold && code == 0 {
            eprintln!(
                "cnnre: run finished; still serving http://{} until GET /quit (--serve-obs-hold)",
                daemon.addr()
            );
            daemon.wait_quit();
        }
    }
    if let Some(mut daemon) = obs_daemon.take() {
        // Explicit: process::exit below skips destructors, and the daemon
        // owns live sockets plus a worker pool.
        daemon.shutdown();
    }
    std::process::exit(code);
}

/// Removes `name <value>` from `args`, returning the value. Exits with
/// usage code 2 when the flag is present but the value is missing.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        eprintln!("{name} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Removes the bare flag `name` from `args`, returning whether it was
/// present.
fn take_bool_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn print_usage() {
    println!(
        "cnnre — reverse engineering CNNs through memory side channels (DAC'18 reproduction)\n\n\
         USAGE:\n  cnnre trace <model> [--csv FILE] [--stats]\n  \
         cnnre analyze <trace-file> [--input WxC] [--classes N] [--stats] [--layers]\n  \
         cnnre attack-structure <model>      (alias: cnnre attack <model>)\n  \
         cnnre attack-weights [--filters N] [--via-trace]\n  cnnre defend <model>\n  \
         cnnre obs-probe ADDR [--against METRICS_JSON] [--quit]\n  \
         cnnre --list-metrics\n\n\
         GLOBAL FLAGS:\n  \
         --threads N          worker threads for the parallel attack engines (default:\n                       \
         CNNRE_THREADS or 1); output is identical at any value\n  \
         --metrics FILE       enable instrumentation, write a metrics snapshot (JSON)\n  \
         --profile-out FILE   record the span-tree timeline; writes Chrome Trace JSON\n                       \
         (open in ui.perfetto.dev), or folded flamegraph stacks\n                       \
         when FILE ends in .folded/.txt\n  \
         --profile-clock C    timeline clock domain: wall|cycles|both (default both)\n  \
         --events-out FILE    record the live attack-event stream to a replayable .evt file\n                       \
         (view with `cnnre-viz --replay FILE`)\n  \
         --events-tcp ADDR    stream attack events to a listening viewer\n                       \
         (start `cnnre-viz --listen ADDR` first)\n  \
         --serve-obs ADDR     serve live observability over HTTP while running:\n                       \
         /metrics /profile /progress /events /health\n                       \
         (scrape with `cnnre obs-probe` or any Prometheus client)\n  \
         --serve-obs-hold     keep serving after the run until a scraper sends GET /quit\n  \
         --log-level LEVEL    stderr verbosity: error|warn|info|debug|trace|off\n                       \
         (also settable via the CNNRE_LOG environment variable)\n\n\
         MODELS: lenet | convnet | alexnet | squeezenet | vgg11 | vgg16 | resnet | inception\n        \
         (append /DIV for depth-scaled variants, e.g. alexnet/8)"
    );
}

/// Parses `name[/div]` into a built network plus its attack parameters
/// `(input interface, classes)`.
fn build_model(spec: &str) -> Result<(Network, (usize, usize), usize), String> {
    let (name, div) = match spec.split_once('/') {
        Some((n, d)) => {
            let div = d
                .parse::<usize>()
                .map_err(|_| format!("bad depth divisor '{d}'"))?;
            (n, div.max(1))
        }
        None => (spec, 1),
    };
    let mut rng = SmallRng::seed_from_u64(0);
    let classes = 10;
    let built = match name {
        "lenet" => (models::lenet(div, classes, &mut rng), (32, 1)),
        "convnet" => (models::convnet(div, classes, &mut rng), (32, 3)),
        "alexnet" => (models::alexnet(div, classes, &mut rng), (227, 3)),
        "squeezenet" => (models::squeezenet(div, classes, &mut rng), (227, 3)),
        "vgg11" => (models::vgg11(div.max(8), classes, &mut rng), (224, 3)),
        "vgg16" => (models::vgg16(div.max(8), classes, &mut rng), (224, 3)),
        "resnet" => (
            models::resnet(&models::ResNetSpec::small(div, classes), &mut rng)
                .map_err(|e| e.to_string())?,
            (64, 3),
        ),
        "inception" => (
            models::inception(&models::InceptionSpec::small(div, classes), &mut rng)
                .map_err(|e| e.to_string())?,
            (64, 3),
        ),
        other => return Err(format!("unknown model '{other}'")),
    };
    Ok((built.0, built.1, classes))
}

fn cmd_trace(args: &[String]) -> i32 {
    let Some(model) = args.first() else {
        eprintln!("usage: cnnre trace <model> [--csv FILE]");
        return 2;
    };
    let (net, _, _) = match build_model(model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let exec = match Accelerator::new(AccelConfig::default()).run_trace_only(&net) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("accelerator error: {e}");
            return 1;
        }
    };
    println!(
        "{model}: {} transactions ({} reads, {} writes), {} cycles, {} layers",
        exec.trace.len(),
        exec.trace.read_count(),
        exec.trace.write_count(),
        exec.trace.duration(),
        exec.stages.len()
    );
    print!("{}", exec.summary(AccelConfig::default().pe_count()));
    if args.iter().any(|a| a == "--stats") {
        let stats = cnn_reveng::trace::stats::TraceStats::compute(&exec.trace, 16);
        print!("{}", stats.render());
        let window = (exec.trace.duration() / 40).max(1);
        let profile = cnn_reveng::trace::stats::TrafficProfile::compute(&exec.trace, window);
        println!("traffic ({window}-cycle windows):");
        print!("{}", profile.render(40));
    }
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--csv needs a file path");
            return 2;
        };
        let write = std::fs::File::create(path)
            .map_err(cnn_reveng::trace::io::TraceIoError::from)
            .and_then(|f| cnn_reveng::trace::io::write_csv(&exec.trace, f));
        match write {
            Ok(()) => println!("trace written to {path} (readable by `cnnre analyze`)"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    0
}

/// Loads a trace file written by `cnnre trace --csv` (or the binary
/// format from `trace::io::write_binary`), sniffing the format from the
/// first bytes.
fn load_trace(path: &str) -> Result<cnn_reveng::trace::Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = if bytes.starts_with(b"CNNRETR1") {
        cnn_reveng::trace::io::read_binary(bytes.as_slice())
    } else {
        cnn_reveng::trace::io::read_csv(bytes.as_slice())
    };
    parsed.map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_analyze(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!(
            "usage: cnnre analyze <trace-file> [--input WxC] [--classes N] [--stats] [--layers]"
        );
        return 2;
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    println!(
        "{path}: {} transactions ({} reads / {} writes), {} cycles",
        trace.len(),
        trace.read_count(),
        trace.write_count(),
        trace.duration()
    );
    if args.iter().any(|a| a == "--stats") {
        let stats = cnn_reveng::trace::stats::TraceStats::compute(&trace, 16);
        print!("{}", stats.render());
    }
    if args.iter().any(|a| a == "--layers") {
        let obs = cnn_reveng::trace::observe::observe(&trace);
        println!("{} segments:", obs.layers.len());
        for (i, l) in obs.layers.iter().enumerate() {
            println!(
                "  seg {i:>2}: {:?} IFM≈{} blk, OFM≈{} blk, FLTR≈{} blk, {} cycles",
                l.kind,
                l.ifm_blocks_total(),
                l.ofm_blocks,
                l.weight_blocks,
                l.cycles
            );
        }
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .cloned()
    };
    let input = match flag("--input") {
        Some(v) => {
            let Some((w, c)) = v.split_once('x') else {
                eprintln!("--input expects WxC, e.g. 227x3");
                return 2;
            };
            match (w.parse::<usize>(), c.parse::<usize>()) {
                (Ok(w), Ok(c)) => Some((w, c)),
                _ => {
                    eprintln!("--input expects WxC, e.g. 227x3");
                    return 2;
                }
            }
        }
        None => None,
    };
    let classes = flag("--classes").and_then(|v| v.parse::<usize>().ok());
    let (Some(input), Some(classes)) = (input, classes) else {
        println!("(pass --input WxC and --classes N to run the structure attack)");
        return 0;
    };
    match recover_structures(&trace, input, classes, &NetworkSolverConfig::default()) {
        Ok(structures) => {
            println!("structure attack: {} possible structures", structures.len());
            for (n, s) in structures.iter().take(5).enumerate() {
                print!("  #{n}: ");
                for c in s.conv_layers() {
                    print!("[{c}] ");
                }
                println!();
            }
            0
        }
        Err(e) => {
            eprintln!("attack failed: {e}");
            1
        }
    }
}

fn cmd_attack_structure(args: &[String]) -> i32 {
    let Some(model) = args.first() else {
        eprintln!("usage: cnnre attack-structure <model>");
        return 2;
    };
    let (net, input, classes) = match build_model(model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let exec = match Accelerator::new(AccelConfig::default()).run_trace_only(&net) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("accelerator error: {e}");
            return 1;
        }
    };
    match recover_structures(&exec.trace, input, classes, &NetworkSolverConfig::default()) {
        Ok(structures) => {
            println!("{model}: {} possible structures", structures.len());
            for (n, s) in structures.iter().take(10).enumerate() {
                print!("  #{n}: ");
                for c in s.conv_layers() {
                    print!("[{c}] ");
                }
                for fc in s.fc_layers() {
                    print!("fc({}->{}) ", fc.in_features, fc.out_features);
                }
                println!();
            }
            if structures.len() > 10 {
                println!("  ... ({} more)", structures.len() - 10);
            }
            0
        }
        Err(e) => {
            eprintln!("attack failed: {e}");
            1
        }
    }
}

fn cmd_attack_weights(args: &[String]) -> i32 {
    let filters = args
        .iter()
        .position(|a| a == "--filters")
        .and_then(|p| args.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let geom = LayerGeometry {
        input: Shape3::new(1, 23, 23),
        d_ofm: filters,
        f: 5,
        s: 2,
        p: 0,
        pool: Some((PoolKind::Max, 3, 2, 0)),
        order: MergedOrder::ActThenPool,
        threshold: 0.0,
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let weights = init::compressed_conv(&mut rng, Shape4::new(filters, 1, 5, 5), 0.4, 8);
    let bias: Vec<f32> = (0..filters).map(|_| -rng.gen_range(0.1..0.5f32)).collect();
    let victim = match Conv2d::from_parts(weights, bias, geom.s, geom.p) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("victim construction: {e}");
            return 1;
        }
    };
    // --via-trace drives the attack through the full accelerator + trace
    // parser (slow: one simulated inference per query); the default uses
    // the equivalent functional model of the same leak.
    let rec = if args.iter().any(|a| a == "--via-trace") {
        // The accelerator-backed oracle is stateful and stays on the
        // sequential engine; the functional path runs filters in parallel.
        let mut oracle = AcceleratorOracle::new(victim.clone(), geom);
        recover_ratios(&mut oracle, &RecoveryConfig::default())
    } else {
        let oracle = FunctionalOracle::new(victim.clone(), geom);
        recover_ratios_parallel(oracle, &RecoveryConfig::default())
    };
    println!(
        "recovered {:.1}% of {} weights, max |w/b| error {:.3e}, {} victim queries",
        100.0 * rec.coverage(),
        filters * 25,
        rec.max_ratio_error(victim.weights(), victim.bias()),
        rec.queries
    );
    0
}

/// `cnnre obs-probe ADDR [--against METRICS_JSON] [--quit]` — scrapes a
/// live `--serve-obs` server with the in-tree HTTP client (no curl in
/// the tree) and validates all five endpoints. With `--against`, every
/// scalar metric in a `--metrics`/bench JSON export is cross-checked
/// against the `/metrics` Prometheus text; with `--quit`, the probe ends
/// a `--serve-obs-hold` run. Exit 0 only when every check passed.
fn cmd_obs_probe(args: &[String]) -> i32 {
    let Some(addr) = args.first() else {
        eprintln!("usage: cnnre obs-probe ADDR [--against METRICS_JSON] [--quit]");
        return 2;
    };
    let against = match args.iter().position(|a| a == "--against") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("--against needs a metrics JSON path");
                return 2;
            }
        },
        None => None,
    };
    let probe = |path: &str| -> Result<Vec<u8>, String> {
        match cnnre_obs::http::get(addr, path) {
            Ok((200, body)) => Ok(body),
            Ok((status, _)) => Err(format!("status {status}")),
            Err(e) => Err(e.to_string()),
        }
    };
    let mut failures = 0usize;
    let mut check = |endpoint: &str, outcome: Result<(), String>| match outcome {
        Ok(()) => eprintln!("obs-probe: {endpoint} OK"),
        Err(why) => {
            eprintln!("obs-probe: {endpoint} FAILED: {why}");
            failures += 1;
        }
    };
    check(
        "/health",
        probe("/health").and_then(|body| {
            if String::from_utf8_lossy(&body).contains("\"status\": \"ok\"") {
                Ok(())
            } else {
                Err("no ok status in body".to_string())
            }
        }),
    );
    let metrics_text = match probe("/metrics") {
        Ok(body) => {
            let text = String::from_utf8_lossy(&body).into_owned();
            let shaped = text.starts_with('#') && text.contains("cnnre_");
            check(
                "/metrics",
                if shaped {
                    Ok(())
                } else {
                    Err("not Prometheus text with cnnre_ families".to_string())
                },
            );
            Some(text)
        }
        Err(e) => {
            check("/metrics", Err(e));
            None
        }
    };
    check(
        "/profile?clock=cycles",
        probe("/profile?clock=cycles").and_then(|body| {
            if String::from_utf8_lossy(&body).contains("traceEvents") {
                Ok(())
            } else {
                Err("no traceEvents array".to_string())
            }
        }),
    );
    check(
        "/progress",
        probe("/progress").and_then(|body| {
            if String::from_utf8_lossy(&body).contains("\"runs\"") {
                Ok(())
            } else {
                Err("no runs table".to_string())
            }
        }),
    );
    check(
        "/events",
        probe("/events").and_then(|body| {
            if body.starts_with(cnnre_obs::stream::MAGIC) {
                Ok(())
            } else {
                Err("replay does not start with the stream magic".to_string())
            }
        }),
    );
    if let (Some(json_path), Some(prom)) = (&against, &metrics_text) {
        check(
            "/metrics vs JSON export",
            compare_metrics_against_json(prom, json_path),
        );
    }
    if args.iter().any(|a| a == "--quit") {
        check("/quit", probe("/quit").map(|_| ()));
    }
    if failures == 0 {
        eprintln!("obs-probe: all checks passed");
        0
    } else {
        1
    }
}

/// Cross-checks the `/metrics` Prometheus text against a flat JSON
/// metrics export: every deterministic scalar `"name": value` line must
/// agree with the `cnnre_`-mangled sample. Series/histogram families are
/// skipped (their exposition shape differs); at least one scalar must
/// match so an empty intersection cannot pass vacuously.
fn compare_metrics_against_json(prom: &str, json_path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(json_path).map_err(|e| format!("cannot read {json_path}: {e}"))?;
    let mut matched = 0usize;
    let mut mismatches = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\": ") else {
            continue;
        };
        let Ok(expected) = value.trim().parse::<f64>() else {
            continue;
        };
        if name == "experiment" || cnnre_obs::export::is_volatile(name) {
            continue;
        }
        let family = format!("{} ", cnnre_obs::export::prometheus_name(name));
        let Some(actual) = prom
            .lines()
            .find_map(|pl| pl.strip_prefix(&family))
            .and_then(|v| v.trim().parse::<f64>().ok())
        else {
            continue;
        };
        if (actual - expected).abs() <= 1e-9 * expected.abs().max(1.0) {
            matched += 1;
        } else {
            mismatches.push(format!("{name}: JSON {expected} vs /metrics {actual}"));
        }
    }
    if !mismatches.is_empty() {
        return Err(format!(
            "{} value mismatches: {}",
            mismatches.len(),
            mismatches.join("; ")
        ));
    }
    if matched == 0 {
        return Err("no scalar metric overlapped between the export and /metrics".to_string());
    }
    eprintln!("obs-probe: {matched} scalar metrics agree with {json_path}");
    Ok(())
}

fn cmd_defend(args: &[String]) -> i32 {
    let Some(model) = args.first() else {
        eprintln!("usage: cnnre defend <model>");
        return 2;
    };
    let (net, input, classes) = match build_model(model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let exec = match Accelerator::new(AccelConfig::default()).run_trace_only(&net) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("accelerator error: {e}");
            return 1;
        }
    };
    let cfg = NetworkSolverConfig::default();
    let before = recover_structures(&exec.trace, input, classes, &cfg).map(|s| s.len());
    println!(
        "unprotected: attack -> {:?} candidate structures",
        before.ok()
    );
    let mut rng = SmallRng::seed_from_u64(9);
    let (protected, stats) = obfuscate(&exec.trace, OramConfig::default(), &mut rng);
    println!("Path-ORAM overhead: {:.0}x traffic", stats.overhead());
    match recover_structures(&protected, input, classes, &cfg) {
        Ok(s) => println!(
            "protected: attack still recovers {} structures (!)",
            s.len()
        ),
        Err(e) => println!("protected: attack FAILS ({e})"),
    }
    0
}
