//! `cnn-reveng` — a reproduction of *"Reverse Engineering Convolutional
//! Neural Networks Through Side-channel Information Leaks"* (Hua, Zhang,
//! Suh; DAC 2018).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense NCHW `f32` tensors ([`cnnre_tensor`]);
//! * [`nn`] — the CNN library and model zoo ([`cnnre_nn`]);
//! * [`accel`] — the tiled accelerator simulator with off-chip memory
//!   tracing and dynamic zero pruning ([`cnnre_accel`]);
//! * [`trace`] — the adversary's memory side-channel view and analysis
//!   ([`cnnre_trace`]);
//! * [`attacks`] — the paper's structure and weight reverse-engineering
//!   attacks ([`cnnre_attacks`]).
//!
//! # Quick start
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a CNN, execute
//! it on the simulated accelerator, capture the memory trace, and recover
//! the network structure from the trace alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cnnre_accel as accel;
pub use cnnre_attacks as attacks;
pub use cnnre_nn as nn;
pub use cnnre_tensor as tensor;
pub use cnnre_trace as trace;
