#!/usr/bin/env bash
# Repository gate: formatting, lints, artifact audits, and the tier-1
# test suite.
#
# Usage: scripts/check.sh
#
# Report paths are configurable (both default to the repository root):
#   LINT_REPORT=/tmp/lint.json AUDIT_REPORT=/tmp/audit.json scripts/check.sh
#
# Set PERF_GATE=1 to also run the perf-regression gate (scripts/
# perf_gate.sh: regenerates the fig3/fig7/table3 BENCH snapshots and
# diffs them against tests/golden/bench_baseline/ — adds ~1-2 minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_REPORT="${LINT_REPORT:-lint_report.json}"
AUDIT_REPORT="${AUDIT_REPORT:-audit_report.json}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cnnre-lint (static analysis incl. test trees, report in $LINT_REPORT)"
cargo run --quiet -p cnnre-lint -- --include-tests --format json --out "$LINT_REPORT"

echo "==> cnnre-audit (golden artifacts, report in $AUDIT_REPORT)"
cargo run --quiet -p cnnre-audit -- candidates tests/golden/lenet_candidates.jsonl --quiet
cargo run --quiet -p cnnre-audit -- trace tests/golden/lenet_trace.csv \
    --format json --out "$AUDIT_REPORT" --quiet
cargo run --quiet -p cnnre-audit -- events tests/golden/lenet_events.evt \
    --trace tests/golden/lenet_trace.csv \
    --candidates tests/golden/lenet_candidates.jsonl --quiet

echo "==> viz (protocol round-trip fuzz + replay determinism)"
cargo test -q -p cnnre-viz
VIZ_TMP="$(mktemp -d)"
trap 'rm -rf "$VIZ_TMP"' EXIT
cargo run --quiet -p cnnre-viz -- --replay tests/golden/lenet_events.evt \
    --out-dir "$VIZ_TMP/a" --snapshots >/dev/null 2>&1
cargo run --quiet -p cnnre-viz -- --replay tests/golden/lenet_events.evt \
    --out-dir "$VIZ_TMP/b" --snapshots >/dev/null 2>&1
diff -r "$VIZ_TMP/a" "$VIZ_TMP/b"
diff -q "$VIZ_TMP/a/graph.dot" tests/golden/lenet_graph.dot
diff -q "$VIZ_TMP/a/timeline.svg" tests/golden/lenet_timeline.svg

echo "==> model check (schedule exploration of concurrent surfaces)"
scripts/model.sh

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> live obs plane (serve-obs on loopback, scrape all endpoints, diff vs JSON export)"
# Start a real experiment with the embedded scrape server on an
# ephemeral port, learn the address from CNNRE_OBS_ADDR_FILE, probe all
# five endpoints with the in-tree client (no curl), cross-check
# /metrics against the end-of-run JSON export, and release the hold.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$VIZ_TMP" "$OBS_TMP"' EXIT
rm -f "$OBS_TMP/addr" "$OBS_TMP/BENCH_table3.json"
CNNRE_QUICK=1 CNNRE_OBS_ADDR_FILE="$OBS_TMP/addr" \
    ./target/release/table3 --threads 2 --serve-obs 127.0.0.1:0 \
    --serve-obs-hold --out "$OBS_TMP/BENCH_table3.json" >/dev/null &
OBS_PID=$!
for _ in $(seq 1 600); do
    [[ -s "$OBS_TMP/addr" && -s "$OBS_TMP/BENCH_table3.json" ]] && break
    if ! kill -0 "$OBS_PID" 2>/dev/null; then
        echo "serve-obs run exited before serving" >&2; exit 1
    fi
    sleep 0.1
done
./target/release/cnnre obs-probe "$(cat "$OBS_TMP/addr")" \
    --against "$OBS_TMP/BENCH_table3.json" --quit
wait "$OBS_PID"

echo "==> tier-1 (multi-threaded solve): CNNRE_THREADS=4 cargo test -q"
# Re-run the suite with the parallel solver/oracle engines engaged so the
# determinism guarantees (byte-identical candidates, goldens, telemetry)
# are exercised under real pool scheduling, not just --threads 1.
CNNRE_THREADS=4 cargo test -q

if [[ "${PERF_GATE:-0}" != "0" ]]; then
    echo "==> perf gate (opt-in via PERF_GATE=1)"
    scripts/perf_gate.sh
fi

echo "All checks passed."
