#!/usr/bin/env bash
# Repository gate: formatting, lints, artifact audits, and the tier-1
# test suite.
#
# Usage: scripts/check.sh
#
# Report paths are configurable (both default to the repository root):
#   LINT_REPORT=/tmp/lint.json AUDIT_REPORT=/tmp/audit.json scripts/check.sh
#
# Set PERF_GATE=1 to also run the perf-regression gate (scripts/
# perf_gate.sh: regenerates the fig3/fig7/table3 BENCH snapshots and
# diffs them against tests/golden/bench_baseline/ — adds ~1-2 minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_REPORT="${LINT_REPORT:-lint_report.json}"
AUDIT_REPORT="${AUDIT_REPORT:-audit_report.json}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cnnre-lint (static analysis incl. test trees, report in $LINT_REPORT)"
cargo run --quiet -p cnnre-lint -- --include-tests --format json --out "$LINT_REPORT"

echo "==> cnnre-audit (golden artifacts, report in $AUDIT_REPORT)"
cargo run --quiet -p cnnre-audit -- candidates tests/golden/lenet_candidates.jsonl --quiet
cargo run --quiet -p cnnre-audit -- trace tests/golden/lenet_trace.csv \
    --format json --out "$AUDIT_REPORT" --quiet
cargo run --quiet -p cnnre-audit -- events tests/golden/lenet_events.evt \
    --trace tests/golden/lenet_trace.csv \
    --candidates tests/golden/lenet_candidates.jsonl --quiet

echo "==> viz (protocol round-trip fuzz + replay determinism)"
cargo test -q -p cnnre-viz
VIZ_TMP="$(mktemp -d)"
trap 'rm -rf "$VIZ_TMP"' EXIT
cargo run --quiet -p cnnre-viz -- --replay tests/golden/lenet_events.evt \
    --out-dir "$VIZ_TMP/a" --snapshots >/dev/null 2>&1
cargo run --quiet -p cnnre-viz -- --replay tests/golden/lenet_events.evt \
    --out-dir "$VIZ_TMP/b" --snapshots >/dev/null 2>&1
diff -r "$VIZ_TMP/a" "$VIZ_TMP/b"
diff -q "$VIZ_TMP/a/graph.dot" tests/golden/lenet_graph.dot
diff -q "$VIZ_TMP/a/timeline.svg" tests/golden/lenet_timeline.svg

echo "==> model check (schedule exploration of concurrent surfaces)"
scripts/model.sh

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> tier-1 (multi-threaded solve): CNNRE_THREADS=4 cargo test -q"
# Re-run the suite with the parallel solver/oracle engines engaged so the
# determinism guarantees (byte-identical candidates, goldens, telemetry)
# are exercised under real pool scheduling, not just --threads 1.
CNNRE_THREADS=4 cargo test -q

if [[ "${PERF_GATE:-0}" != "0" ]]; then
    echo "==> perf gate (opt-in via PERF_GATE=1)"
    scripts/perf_gate.sh
fi

echo "All checks passed."
