#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cnnre-lint (in-tree static analysis, report in lint_report.json)"
cargo run --quiet -p cnnre-lint -- --format json --out lint_report.json

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "All checks passed."
