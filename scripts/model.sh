#!/usr/bin/env bash
# Concurrency model-check gate: exhaustively explores thread interleavings
# of the certified concurrent surfaces under the cnnre-model cooperative
# scheduler (bounded preemptions + sleep-set pruning; see DESIGN.md §12).
#
#   - cnnre-model: shim/engine self-tests plus the three seeded defect
#     fixtures (data race, AB-BA deadlock, lost update), each pinned to a
#     byte-exact replay schedule string;
#   - crates/core exec: the work-stealing deque and thread-pool protocols
#     (steal/push races, empty steal, last-element race, shutdown,
#     panic-in-task);
#   - crates/obs: registry creation/increment race, profile ring slot
#     claim race, stream hub client-queue handoff.
#
# Usage: scripts/model.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cnnre-model: engine self-tests + seeded defect fixtures"
cargo test -q -p cnnre-model --features model-check

echo "==> exec deque + thread pool (crates/core, model-check)"
cargo test -q -p cnnre-attacks --features model-check --test model_exec

echo "==> obs concurrent surfaces (registry, profile ring, stream hub)"
cargo test -q -p cnnre-obs --features model-check --lib

echo "Model check passed."
