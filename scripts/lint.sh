#!/usr/bin/env bash
# Run the in-tree static analyzer on the workspace, including the test
# trees (tests/, benches/, examples/ are linted under the relaxed rule
# set — wallclock and hash-iter stay on there).
#
# Usage: scripts/lint.sh [extra cnnre-lint flags...]
#   scripts/lint.sh                      # human-readable table
#   scripts/lint.sh --format json        # machine-readable report on stdout
#   scripts/lint.sh --list-rules         # show the rule table
#   scripts/lint.sh --explain CT001      # rule rationale + minimal example
#
# Set LINT_REPORT=<path> to additionally write a JSON report there (same
# variable scripts/check.sh uses), whatever the on-screen format:
#   LINT_REPORT=/tmp/lint.json scripts/lint.sh
#
# Exits 0 when clean, 1 on violations, 2 on usage/I-O errors.
set -euo pipefail
cd "$(dirname "$0")/.."

report_args=()
if [[ -n "${LINT_REPORT:-}" ]]; then
    report_args=(--format json --out "$LINT_REPORT")
fi

exec cargo run --quiet -p cnnre-lint -- --include-tests "${report_args[@]}" "$@"
