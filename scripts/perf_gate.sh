#!/usr/bin/env bash
# Perf-regression gate: regenerate the BENCH snapshots for the gated
# experiments (fig3, fig7, table3) and diff each against its committed
# baseline under tests/golden/bench_baseline/.
#
# Usage: scripts/perf_gate.sh
#
# Exit codes: 0 clean, 1 at least one regression, 2 usage/malformed input.
# Snapshots and reports land in $PERF_GATE_DIR (default: a temp directory);
# cycle-domain metrics are gated strictly (default 1% relative tolerance,
# override with PERF_GATE_REL_TOL), wall-ns metrics are advisory only.
# To refresh baselines after an intentional perf change, see EXPERIMENTS.md
# ("Regenerating the perf baselines").
set -euo pipefail
cd "$(dirname "$0")/.."

EXPERIMENTS=(fig3 fig7 table3)
BASELINE_DIR="tests/golden/bench_baseline"
PERF_GATE_DIR="${PERF_GATE_DIR:-$(mktemp -d)}"
PERF_GATE_REL_TOL="${PERF_GATE_REL_TOL:-0.01}"

echo "==> building release bench binaries"
cargo build --release -p cnnre-bench --bins

status=0
for exp in "${EXPERIMENTS[@]}"; do
    baseline="$BASELINE_DIR/BENCH_$exp.json"
    current="$PERF_GATE_DIR/BENCH_$exp.json"
    report="$PERF_GATE_DIR/perf_gate_$exp.txt"
    if [[ ! -f "$baseline" ]]; then
        echo "perf gate: missing baseline $baseline" >&2
        exit 2
    fi
    echo "==> $exp: regenerating snapshot"
    "./target/release/$exp" --out "$current" >/dev/null
    echo "==> $exp: diffing against $baseline"
    set +e
    ./target/release/perf_gate "$baseline" "$current" \
        --rel-tol "$PERF_GATE_REL_TOL" --report "$report"
    code=$?
    set -e
    if [[ $code -eq 2 ]]; then
        exit 2
    elif [[ $code -ne 0 ]]; then
        status=1
    fi
done

if [[ $status -eq 0 ]]; then
    echo "perf gate: all experiments within tolerance."
else
    echo "perf gate: regressions detected (reports in $PERF_GATE_DIR)." >&2
fi
exit $status
