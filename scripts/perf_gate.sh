#!/usr/bin/env bash
# Perf-regression gate: regenerate the BENCH snapshots for the gated
# experiments (fig3, fig7, table3) and diff each against its committed
# baseline under tests/golden/bench_baseline/.
#
# Usage: scripts/perf_gate.sh
#
# Exit codes: 0 clean, 1 at least one regression, 2 usage/malformed input.
# Snapshots and reports land in $PERF_GATE_DIR (default: a temp directory);
# cycle-domain metrics are gated strictly (default 1% relative tolerance,
# override with PERF_GATE_REL_TOL), wall-ns metrics are advisory only.
# To refresh baselines after an intentional perf change, see EXPERIMENTS.md
# ("Regenerating the perf baselines").
#
# After the regression stage, the *improvement* stage runs the gated solver
# experiments at --threads 1 and --threads $PERF_GATE_THREADS (default 8)
# and enforces the committed wall-clock speedup floors in SPEEDUP.json,
# plus a byte-diff of the two runs' stdout (candidate output must be
# identical at any thread count). The speedup floors are skipped with a
# loud warning on hosts with fewer than 4 CPUs — a 3x floor is not
# measurable there — but the determinism byte-diff always runs.
set -euo pipefail
cd "$(dirname "$0")/.."

EXPERIMENTS=(fig3 fig7 table3)
BASELINE_DIR="tests/golden/bench_baseline"
PERF_GATE_DIR="${PERF_GATE_DIR:-$(mktemp -d)}"
PERF_GATE_REL_TOL="${PERF_GATE_REL_TOL:-0.01}"

echo "==> building release bench binaries"
cargo build --release -p cnnre-bench --bins

status=0
for exp in "${EXPERIMENTS[@]}"; do
    baseline="$BASELINE_DIR/BENCH_$exp.json"
    current="$PERF_GATE_DIR/BENCH_$exp.json"
    report="$PERF_GATE_DIR/perf_gate_$exp.txt"
    if [[ ! -f "$baseline" ]]; then
        echo "perf gate: missing baseline $baseline" >&2
        exit 2
    fi
    echo "==> $exp: regenerating snapshot"
    "./target/release/$exp" --out "$current" >/dev/null
    echo "==> $exp: diffing against $baseline"
    set +e
    ./target/release/perf_gate "$baseline" "$current" \
        --rel-tol "$PERF_GATE_REL_TOL" --report "$report"
    code=$?
    set -e
    if [[ $code -eq 2 ]]; then
        exit 2
    elif [[ $code -ne 0 ]]; then
        status=1
    fi
done

# --- Improvement stage: wall-clock speedup floors + thread determinism ---
SPEEDUP_EXPERIMENTS=(table3 fig7)
SPEEDUP_FLOORS="$BASELINE_DIR/SPEEDUP.json"
PERF_GATE_THREADS="${PERF_GATE_THREADS:-8}"
NPROC="$(nproc 2>/dev/null || echo 1)"

for exp in "${SPEEDUP_EXPERIMENTS[@]}"; do
    single_out="$PERF_GATE_DIR/BENCH_${exp}_t1.json"
    multi_out="$PERF_GATE_DIR/BENCH_${exp}_t$PERF_GATE_THREADS.json"
    single_stdout="$PERF_GATE_DIR/${exp}_t1.stdout"
    multi_stdout="$PERF_GATE_DIR/${exp}_t$PERF_GATE_THREADS.stdout"
    echo "==> $exp: determinism byte-diff, --threads 1 vs --threads $PERF_GATE_THREADS (quick mode)"
    CNNRE_QUICK=1 "./target/release/$exp" --threads 1 >"$single_stdout"
    CNNRE_QUICK=1 "./target/release/$exp" --threads "$PERF_GATE_THREADS" >"$multi_stdout"
    if ! cmp -s "$single_stdout" "$multi_stdout"; then
        echo "perf gate: $exp output differs between thread counts:" >&2
        diff "$single_stdout" "$multi_stdout" >&2 || true
        status=1
        continue
    fi
    if [[ "$NPROC" -lt 4 ]]; then
        echo "perf gate: WARNING: only $NPROC CPU(s) — skipping the $exp speedup floor" >&2
        echo "perf gate: WARNING: the >=3x wall-clock improvement is NOT being enforced here" >&2
        continue
    fi
    echo "==> $exp: measuring speedup, --threads 1 vs --threads $PERF_GATE_THREADS"
    "./target/release/$exp" --threads 1 --out "$single_out" >/dev/null
    "./target/release/$exp" --threads "$PERF_GATE_THREADS" --out "$multi_out" >/dev/null
    set +e
    ./target/release/perf_gate --speedup "$single_out" "$multi_out" \
        --floors "$SPEEDUP_FLOORS" --report "$PERF_GATE_DIR/speedup_$exp.txt"
    code=$?
    set -e
    if [[ $code -eq 2 ]]; then
        exit 2
    elif [[ $code -ne 0 ]]; then
        status=1
    fi
done

if [[ $status -eq 0 ]]; then
    echo "perf gate: all experiments within tolerance."
else
    echo "perf gate: regressions detected (reports in $PERF_GATE_DIR)." >&2
fi
exit $status
