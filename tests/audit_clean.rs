//! Golden-artifact audit gate: the checked-in LeNet trace and candidate
//! set under `tests/golden/` must (a) be byte-identical to what the
//! current pipeline regenerates and (b) audit clean under `cnnre-audit`.
//!
//! Together these pin the semantic invariants end to end: if the engine,
//! segmenter, or solver drifts, the byte-identity tests fail; if the
//! auditor tightens a check past what the real pipeline produces, the
//! clean-audit tests fail.
//!
//! Regenerate the goldens after an intentional pipeline change with:
//!
//! ```text
//! cargo test --test audit_clean -- --ignored regenerate_goldens
//! ```

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{
    recover_structures, CandidateStructure, NetworkSolverConfig, NodeChoice,
};
use cnn_reveng::nn::models::lenet;
use cnnre_audit::{candidates, parse_candidates, trace as audit_trace, Tolerances};
use cnnre_tensor::rng::{SeedableRng, SmallRng};
use cnnre_trace::Trace;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_trace() -> Trace {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    exec.trace
}

fn render_trace_csv(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    cnnre_trace::io::write_csv(trace, &mut buf).expect("in-memory CSV render");
    buf
}

fn golden_structures(trace: &Trace) -> Vec<CandidateStructure> {
    recover_structures(trace, (32, 1), 10, &NetworkSolverConfig::default())
        .expect("structures recoverable from the golden trace")
}

/// Serializes recovered structures into the flat JSONL schema
/// `cnnre-audit candidates` consumes (one compute layer per line).
fn render_candidates_jsonl(structures: &[CandidateStructure]) -> String {
    let mut out = String::from(
        "# Golden candidate set: every structure recovered from the LeNet\n\
         # golden trace. Regenerate with\n\
         #   cargo test --test audit_clean -- --ignored regenerate_goldens\n",
    );
    for (si, structure) in structures.iter().enumerate() {
        let mut li = 0usize;
        for choice in &structure.choices {
            match choice {
                NodeChoice::Conv(p) => {
                    out.push_str(&format!(
                        "{{\"structure\":{si},\"layer\":{li},\
                         \"w_ifm\":{},\"d_ifm\":{},\"w_ofm\":{},\"d_ofm\":{},\
                         \"f_conv\":{},\"s_conv\":{},\"p_conv\":{}",
                        p.w_ifm, p.d_ifm, p.w_ofm, p.d_ofm, p.f_conv, p.s_conv, p.p_conv
                    ));
                    if let Some(pool) = p.pool {
                        out.push_str(&format!(
                            ",\"pool\":{{\"f\":{},\"s\":{},\"p\":{}}}",
                            pool.f, pool.s, pool.p
                        ));
                    }
                    out.push_str("}\n");
                    li += 1;
                }
                NodeChoice::Fc(f) => {
                    out.push_str(&format!(
                        "{{\"structure\":{si},\"layer\":{li},\
                         \"in_features\":{},\"out_features\":{}}}\n",
                        f.in_features, f.out_features
                    ));
                    li += 1;
                }
                NodeChoice::Input | NodeChoice::Merge => {}
            }
        }
    }
    out
}

#[test]
fn golden_trace_matches_regeneration() {
    let on_disk = std::fs::read(golden_dir().join("lenet_trace.csv"))
        .expect("golden trace exists; regenerate with the ignored test");
    let regenerated = render_trace_csv(&golden_trace());
    assert!(
        on_disk == regenerated,
        "tests/golden/lenet_trace.csv is stale: the pipeline now produces a \
         different trace; rerun the regenerate_goldens test if intentional"
    );
}

#[test]
fn golden_candidates_match_regeneration() {
    let on_disk = std::fs::read_to_string(golden_dir().join("lenet_candidates.jsonl"))
        .expect("golden candidates exist; regenerate with the ignored test");
    let regenerated = render_candidates_jsonl(&golden_structures(&golden_trace()));
    assert!(
        on_disk == regenerated,
        "tests/golden/lenet_candidates.jsonl is stale: the solver now produces \
         a different candidate set; rerun the regenerate_goldens test if intentional"
    );
}

#[test]
fn golden_trace_audits_clean() {
    let file = std::fs::File::open(golden_dir().join("lenet_trace.csv"))
        .expect("golden trace exists; regenerate with the ignored test");
    let trace = cnnre_trace::io::read_csv(file).expect("golden trace parses");
    let report = audit_trace(&trace);
    assert!(report.items_examined > 0);
    assert!(
        report.is_clean(),
        "golden trace must audit clean:\n{}",
        report.render_human()
    );
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn golden_candidates_audit_clean() {
    let text = std::fs::read_to_string(golden_dir().join("lenet_candidates.jsonl"))
        .expect("golden candidates exist; regenerate with the ignored test");
    let chains = parse_candidates(&text).expect("golden candidates parse");
    assert!(!chains.is_empty());
    let report = candidates(&chains, &Tolerances::default());
    assert!(report.items_examined > 0);
    assert!(
        report.is_clean(),
        "golden candidate set must audit clean:\n{}",
        report.render_human()
    );
}

/// Rewrites the golden artifacts from the current pipeline. Ignored by
/// default so `cargo test` never mutates the source tree; run explicitly
/// after an intentional engine/solver change.
#[test]
#[ignore = "rewrites tests/golden/ from the current pipeline"]
fn regenerate_goldens() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("tests/golden creatable");
    let trace = golden_trace();
    std::fs::write(dir.join("lenet_trace.csv"), render_trace_csv(&trace))
        .expect("golden trace written");
    let jsonl = render_candidates_jsonl(&golden_structures(&trace));
    std::fs::write(dir.join("lenet_candidates.jsonl"), jsonl).expect("golden candidates written");
}
