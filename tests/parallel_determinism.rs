//! Thread-count determinism suite for the parallel attack engines
//! (DESIGN.md §13): structure-candidate enumeration, weight recovery, and
//! every deterministic telemetry artifact (the `.evt` event recording and
//! the cycle-domain profile export) must be **byte-identical** at
//! `--threads` 1, 2, and 8, and the memoized chain must serve repeat
//! per-layer enumerations from cache instead of re-enumerating.
//!
//! The obs hubs (metric registry, stream hub, profile ring) are
//! process-global, so all phases run sequentially inside one `#[test]`
//! body — the same convention as `events_golden.rs`/`profile_golden.rs`.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, CandidateStructure, NetworkSolverConfig};
use cnn_reveng::attacks::weights::{
    recover_ratios_parallel, FunctionalOracle, LayerGeometry, MergedOrder, RecoveryConfig,
};
use cnn_reveng::nn::layer::{Conv2d, PoolKind};
use cnn_reveng::nn::models::lenet;
use cnn_reveng::nn::Network;
use cnn_reveng::tensor::rng::{Rng, SeedableRng, SmallRng};
use cnn_reveng::tensor::{init, Shape3, Shape4};
use cnnre_obs::profile::{chrome_trace, ClockDomain};
use std::path::PathBuf;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The default network-solver config with an explicit worker count
/// (overriding the `CNNRE_THREADS`-derived default, so the suite pins the
/// same thread counts whatever environment it runs under).
fn solver_cfg(threads: usize) -> NetworkSolverConfig {
    let mut cfg = NetworkSolverConfig::default();
    cfg.layer.threads = threads;
    cfg
}

fn lenet_net() -> Network {
    let mut rng = SmallRng::seed_from_u64(0);
    lenet(1, 10, &mut rng)
}

fn recover_lenet(net: &Network, threads: usize) -> Vec<CandidateStructure> {
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &solver_cfg(threads))
        .expect("structures recoverable")
}

/// The golden pipeline (LeNet seed-0 trace + structure recovery) with event
/// recording on, at an explicit thread count; returns the `.evt` bytes.
fn recorded_run(threads: usize) -> Vec<u8> {
    cnnre_obs::set_enabled(true);
    cnnre_obs::stream::reset();
    cnnre_obs::stream::set_enabled(true);
    cnnre_obs::stream::set_record(true);
    let net = lenet_net();
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &solver_cfg(threads))
        .expect("structures recoverable");
    let bytes = cnnre_obs::stream::take_recorded_bytes();
    cnnre_obs::stream::set_record(false);
    cnnre_obs::stream::set_enabled(false);
    cnnre_obs::stream::reset();
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    bytes
}

/// The same pipeline with profiling on; returns the cycle-domain Chrome
/// Trace export (the wall-clock domain varies per run by construction).
fn profiled_run(threads: usize) -> String {
    cnnre_obs::set_enabled(true);
    cnnre_obs::profile::set_enabled(true);
    cnnre_obs::profile::reset();
    let net = lenet_net();
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &solver_cfg(threads))
        .expect("structures recoverable");
    let events = cnnre_obs::profile::take();
    cnnre_obs::profile::set_enabled(false);
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    chrome_trace(&events, ClockDomain::Cycles)
}

/// A small compressed-conv victim in the Fig. 7 geometry class.
fn weights_victim() -> (Conv2d, LayerGeometry) {
    let geom = LayerGeometry {
        input: Shape3::new(3, 31, 31),
        d_ofm: 4,
        f: 11,
        s: 4,
        p: 0,
        pool: Some((PoolKind::Max, 3, 2, 0)),
        order: MergedOrder::ActThenPool,
        threshold: 0.0,
    };
    let mut rng = SmallRng::seed_from_u64(2018);
    let weights = init::compressed_conv(&mut rng, Shape4::new(4, 3, 11, 11), 0.45, 8);
    let bias: Vec<f32> = (0..4).map(|_| -rng.gen_range(0.05..0.5f32)).collect();
    let victim = Conv2d::from_parts(weights, bias, geom.s, geom.p).expect("victim conv");
    (victim, geom)
}

#[test]
fn engines_are_byte_identical_across_thread_counts() {
    // Phase 1 — structure candidates: the full candidate list (content AND
    // ranking) is invariant under the worker count.
    let net = lenet_net();
    let baseline = recover_lenet(&net, THREAD_COUNTS[0]);
    assert!(!baseline.is_empty(), "baseline run must find structures");
    for &threads in &THREAD_COUNTS[1..] {
        let got = recover_lenet(&net, threads);
        assert!(
            got == baseline,
            "candidate structures diverge at --threads {threads}"
        );
    }

    // Phase 2 — weight recovery: per-filter ratios, zero identifications,
    // and the cycle-deterministic victim-query count are invariant.
    let (victim, geom) = weights_victim();
    let recover = |threads: usize| {
        let cfg = RecoveryConfig {
            threads,
            ..RecoveryConfig::default()
        };
        recover_ratios_parallel(FunctionalOracle::new(victim.clone(), geom), &cfg)
    };
    let base = recover(THREAD_COUNTS[0]);
    assert!(base.queries > 0, "baseline recovery must query the victim");
    let base_ratios: Vec<Vec<Option<f64>>> =
        base.filters.iter().map(|f| f.as_slice().to_vec()).collect();
    for &threads in &THREAD_COUNTS[1..] {
        let got = recover(threads);
        let got_ratios: Vec<Vec<Option<f64>>> =
            got.filters.iter().map(|f| f.as_slice().to_vec()).collect();
        assert!(
            got_ratios == base_ratios,
            "recovered ratios diverge at --threads {threads}"
        );
        assert_eq!(
            got.queries, base.queries,
            "oracle query count diverges at --threads {threads}"
        );
    }

    // Phase 3 — telemetry artifacts: the recorded event stream and the
    // cycle-domain profile export match the committed goldens byte for
    // byte at every thread count (cycle-order emission, DESIGN.md §13).
    let golden_evt = std::fs::read(golden_path("lenet_events.evt"))
        .expect("golden .evt exists (events_golden.rs regenerates it)");
    let golden_profile = std::fs::read_to_string(golden_path("lenet_profile.json"))
        .expect("golden profile exists (profile_golden.rs regenerates it)");
    for &threads in &THREAD_COUNTS {
        let evt = recorded_run(threads);
        assert!(
            evt == golden_evt,
            ".evt recording diverges from the golden at --threads {threads}"
        );
        let profile = profiled_run(threads);
        assert!(
            profile == golden_profile,
            "cycle-domain profile diverges from the golden at --threads {threads}"
        );
    }

    // Phase 4 — memo economy: chaining is incremental, not re-enumerated.
    // Repeat (node, interface) lookups must be served from the memo cache,
    // and the tallies are schedule-independent (misses = distinct keys).
    cnnre_obs::set_enabled(true);
    cnnre_obs::global().reset();
    recover_lenet(&net, 2);
    let snap = cnnre_obs::global().snapshot();
    let hits = snap.get("solver.memo.hits").unwrap_or(0.0);
    let misses = snap.get("solver.memo.misses").unwrap_or(0.0);
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    assert!(
        misses > 0.0,
        "chain must enumerate at least one per-layer candidate set"
    );
    assert!(
        hits > 0.0,
        "chain must serve repeat enumerations from the memo cache \
         (solver.memo.hits = 0 means every extension re-enumerated)"
    );

    // And the tallies themselves are thread-invariant.
    cnnre_obs::set_enabled(true);
    cnnre_obs::global().reset();
    recover_lenet(&net, 8);
    let snap = cnnre_obs::global().snapshot();
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    assert_eq!(
        (snap.get("solver.memo.hits"), snap.get("solver.memo.misses")),
        (Some(hits), Some(misses)),
        "memo hit/miss tallies must be schedule-independent"
    );
}
