//! Live-observability-plane gates: the `/metrics` scrape of the golden
//! LeNet pipeline (trace generation plus structure recovery, the paper's
//! Fig. 3 setting) must be byte-identical across consecutive scrapes —
//! the scrape must not perturb itself — and match the checked-in
//! `tests/golden/lenet_metrics.prom`; and the whole CLI flow
//! (`--serve-obs` + `--serve-obs-hold` + `obs-probe --against --quit`)
//! must hand shake end to end as two real processes.
//!
//! Regenerate the golden after an intentional metric or exposition
//! change:
//!
//! ```text
//! cargo test --test obs_http -- --ignored regenerate_golden_metrics
//! ```
//!
//! The registry is global, so the in-process test performs its entire
//! pipeline + serve + scrape sequence in one `#[test]` body.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::lenet;
use cnnre_obs::http::get;
use cnnre_tensor::rng::{SeedableRng, SmallRng};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs the golden pipeline (LeNet seed-0 trace + structure recovery)
/// from a clean registry, leaving the populated registry and recorded
/// event stream in place for scraping.
fn golden_pipeline() {
    cnnre_obs::set_enabled(true);
    cnnre_obs::global().reset();
    cnnre_obs::run::reset();
    cnnre_obs::stream::reset();
    cnnre_obs::stream::set_enabled(true);
    cnnre_obs::stream::set_record(true);
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &NetworkSolverConfig::default())
        .expect("structures recoverable");
}

fn teardown() {
    cnnre_obs::stream::set_record(false);
    cnnre_obs::stream::set_enabled(false);
    cnnre_obs::stream::reset();
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    cnnre_obs::run::reset();
}

#[test]
fn live_scrape_is_deterministic_and_matches_golden() {
    golden_pipeline();
    let mut daemon = cnn_reveng::attacks::obsd::serve("127.0.0.1:0").expect("bind loopback");
    let addr = daemon.addr().to_string();

    // Scrape-during-live-registry determinism: the first scrape records
    // http.* and exec.pool.* activity of its own, yet the second scrape
    // must render byte-identically because those families are volatile.
    let (status, first) = get(&addr, "/metrics").expect("first scrape");
    assert_eq!(status, 200);
    let (_, second) = get(&addr, "/metrics").expect("second scrape");
    assert_eq!(first, second, "scraping /metrics must not perturb it");
    let text = String::from_utf8_lossy(&first).into_owned();
    assert!(
        !text.contains("_wall_ns")
            && !text.contains("cnnre_http_")
            && !text.contains("cnnre_exec_pool_"),
        "volatile families must be excluded from the default exposition"
    );
    let (_, with_volatile) = get(&addr, "/metrics?volatile=1").expect("volatile scrape");
    assert!(
        String::from_utf8_lossy(&with_volatile).contains("cnnre_http_requests"),
        "?volatile=1 must include the live http.* families"
    );

    let (status, body) = get(&addr, "/health").expect("health");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"status\": \"ok\""));
    let (status, body) = get(&addr, "/profile?clock=cycles").expect("profile");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("traceEvents"));
    let (status, body) = get(&addr, "/progress").expect("progress");
    assert_eq!(status, 200);
    let progress = String::from_utf8_lossy(&body).into_owned();
    assert!(progress.contains("\"runs\""));
    assert!(
        progress.contains("attack.structure"),
        "the run table must list the structure attack: {progress}"
    );
    let (status, body) = get(&addr, "/events").expect("events");
    assert_eq!(status, 200);
    assert!(body.starts_with(cnnre_obs::stream::MAGIC));
    let events = cnnre_obs::stream::read_stream(body.as_slice()).expect("replay decodes");
    assert!(!events.is_empty(), "the replay carries the recorded run");

    daemon.shutdown();

    let golden = std::fs::read_to_string(golden_path("lenet_metrics.prom"))
        .expect("golden .prom exists; regenerate with the ignored test");
    assert!(
        golden == text,
        "tests/golden/lenet_metrics.prom is stale: the pipeline's metrics or \
         the Prometheus exposition changed; rerun `cargo test --test obs_http \
         -- --ignored regenerate_golden_metrics` if the change is intentional"
    );
    teardown();
}

#[test]
#[ignore = "writes tests/golden/lenet_metrics.prom; run explicitly after intentional changes"]
fn regenerate_golden_metrics() {
    golden_pipeline();
    let rendered = cnnre_obs::global().snapshot().to_prometheus(false);
    std::fs::write(golden_path("lenet_metrics.prom"), rendered).expect("golden .prom written");
    teardown();
}

/// The CLI handshake as two real processes: `cnnre attack-structure
/// --serve-obs --serve-obs-hold --metrics` publishing its port through
/// `CNNRE_OBS_ADDR_FILE`, probed and quit by `cnnre obs-probe --against
/// --quit` — the same flow `scripts/check.sh` drives.
#[test]
fn serve_obs_cli_flow_roundtrips_between_processes() {
    let tmp = std::env::temp_dir().join(format!("cnnre-obs-http-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("temp dir");
    let addr_file = tmp.join("addr");
    let metrics_file = tmp.join("metrics.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_cnnre"))
        .args([
            "attack-structure",
            "lenet",
            "--serve-obs",
            "127.0.0.1:0",
            "--serve-obs-hold",
            "--metrics",
        ])
        .arg(&metrics_file)
        .env("CNNRE_OBS_ADDR_FILE", &addr_file)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn cnnre --serve-obs");
    // The metrics snapshot lands right before the hold, so both files
    // present means the server is up with the finished run's registry.
    let mut ready = false;
    for _ in 0..600 {
        if addr_file.exists() && metrics_file.exists() {
            ready = true;
            break;
        }
        if let Some(status) = child.try_wait().expect("child pollable") {
            panic!("cnnre exited before serving (status {status})");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(ready, "server did not come up within the poll budget");
    let addr = std::fs::read_to_string(&addr_file)
        .expect("address file readable")
        .trim()
        .to_string();
    let probe = Command::new(env!("CARGO_BIN_EXE_cnnre"))
        .args(["obs-probe", &addr, "--against"])
        .arg(&metrics_file)
        .arg("--quit")
        .status()
        .expect("obs-probe runs");
    assert!(probe.success(), "obs-probe found a failing endpoint");
    let run = child.wait().expect("cnnre exits after /quit");
    assert!(run.success(), "cnnre run failed (status {run})");
    let _ = std::fs::remove_dir_all(&tmp);
}
