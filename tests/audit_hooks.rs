//! The `audit-hooks` sanitizer feature is enabled for every test build in
//! the workspace (root dev-dependencies turn it on; release builds of the
//! library stay hook-free). These tests prove the hook chain actually
//! fires: a clean engine trace passes, an intentionally corrupted one
//! panics inside the audit.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::nn::models::lenet;
use cnnre_tensor::rng::{SeedableRng, SmallRng};
use cnnre_trace::Trace;

fn engine_trace() -> Trace {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("lenet lowers")
        .trace
}

#[test]
fn clean_engine_trace_passes_the_hook() {
    cnnre_accel::audit_finished_trace(&engine_trace());
}

#[test]
#[should_panic(expected = "trace audit failed")]
fn corrupted_cycle_stamp_trips_the_hook() {
    let (mut events, blk, elem) = engine_trace().into_parts();
    let last = events.len() - 1;
    assert!(events[last - 1].cycle > 0, "engine cycles advance");
    // Rewind the final event's clock: the stream is no longer time-ordered.
    events[last].cycle = 0;
    cnnre_accel::audit_finished_trace(&Trace::from_parts(events, blk, elem));
}

#[test]
#[should_panic(expected = "trace audit failed")]
fn segmenter_hook_rejects_non_monotone_trace() {
    let (mut events, blk, elem) = engine_trace().into_parts();
    let last = events.len() - 1;
    events[last].cycle = 0;
    // The segmenter itself carries the hook: any caller that segments a
    // corrupt trace in a test build fails fast, not just the engine.
    let _ = cnnre_trace::segment::segment_trace(&Trace::from_parts(events, blk, elem));
}
