//! End-to-end structure reverse engineering (the paper's §3) on all four
//! case-study networks, from simulated full-scale memory traces.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{
    filter_modular, filter_modular_pools, recover_structures, CandidateStructure, LayerParams,
    NetworkSolverConfig,
};
use cnn_reveng::nn::models::{alexnet, convnet, lenet, squeezenet, ConvSpec};
use cnn_reveng::nn::Network;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

fn recover(net: &Network, input: (usize, usize), classes: usize) -> Vec<CandidateStructure> {
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(net)
        .expect("network lowers onto the accelerator");
    recover_structures(&exec.trace, input, classes, &NetworkSolverConfig::default())
        .expect("structures recoverable")
}

/// Whether `candidate` matches `spec` up to the padding degeneracy the
/// solver dedups (same widths/depths/filter/stride/pool; padding may be the
/// smaller representative producing the same pre-pool width).
fn matches_spec(candidate: &LayerParams, spec: &ConvSpec) -> bool {
    candidate.f_conv == spec.f
        && candidate.s_conv == spec.s
        && candidate.pool.map(|p| (p.f, p.s, p.p)) == spec.pool.map(|p| (p.f, p.s, p.p))
        && cnn_reveng::nn::geometry::conv_out(candidate.w_ifm, spec.f, spec.s, spec.p)
            == candidate.conv_out_w()
}

fn truth_found(structures: &[CandidateStructure], specs: &[ConvSpec]) -> bool {
    structures.iter().any(|s| {
        let convs = s.conv_layers();
        convs.len() == specs.len()
            && convs
                .iter()
                .zip(specs)
                .all(|(c, spec)| matches_spec(c, spec))
    })
}

#[test]
fn lenet_structure_space_is_small_and_contains_truth() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let structures = recover(&net, (32, 1), 10);
    // Paper's Table 3: 9 possible structures; our exhaustive solver finds a
    // slightly larger superset (see EXPERIMENTS.md).
    assert!(
        (2..=40).contains(&structures.len()),
        "LeNet candidate count out of band: {}",
        structures.len()
    );
    let truth = [
        ConvSpec::new(6, 5, 1, 0).with_pool(cnn_reveng::nn::models::PoolSpec::max(2, 2)),
        ConvSpec::new(16, 5, 1, 0).with_pool(cnn_reveng::nn::models::PoolSpec::max(2, 2)),
    ];
    assert!(
        truth_found(&structures, &truth),
        "true LeNet structure missing"
    );
    // All structures end in a 10-class FC layer.
    for s in &structures {
        assert_eq!(
            s.fc_layers().last().expect("has FC layers").out_features,
            10
        );
    }
}

#[test]
fn convnet_structure_space_is_small_and_contains_truth() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = convnet(1, 10, &mut rng);
    let structures = recover(&net, (32, 3), 10);
    assert!(
        (2..=25).contains(&structures.len()),
        "ConvNet candidate count out of band: {}",
        structures.len()
    );
    let pool32 = cnn_reveng::nn::models::PoolSpec::max(3, 2);
    let truth = [
        ConvSpec::new(32, 5, 1, 2).with_pool(pool32),
        ConvSpec::new(32, 5, 1, 2).with_pool(pool32),
        ConvSpec::new(64, 3, 1, 1).with_pool(cnn_reveng::nn::models::PoolSpec::max(2, 2)),
    ];
    assert!(
        truth_found(&structures, &truth),
        "true ConvNet structure missing"
    );
}

#[test]
fn alexnet_structure_space_contains_truth_and_table4_alternatives() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = alexnet(1, 1000, &mut rng);
    let structures = recover(&net, (227, 3), 1000);
    assert!(
        (24..=150).contains(&structures.len()),
        "AlexNet candidate count out of band: {}",
        structures.len()
    );
    // The canonical AlexNet (paper's CONV1_1..CONV5_1 path).
    assert!(
        truth_found(&structures, &cnn_reveng::nn::models::ALEXNET_CONV_SPECS),
        "true AlexNet structure missing"
    );
    // The paper's alternative CONV2_2 -> CONV3_2 path is also found.
    let alt_path = structures.iter().any(|s| {
        let convs = s.conv_layers();
        convs.len() == 5
            && convs[1].f_conv == 10
            && convs[1].d_ofm == 64
            && convs[1].w_ofm == 26
            && convs[2].f_conv == 6
            && convs[2].s_conv == 2
    });
    assert!(alt_path, "Table-4 CONV2_2/CONV3_2 path missing");
    // FC stack recovered uniquely: 9216 -> 4096 -> 4096 -> 1000.
    for s in &structures {
        let fcs = s.fc_layers();
        assert_eq!(fcs.len(), 3);
        assert_eq!(fcs[0].out_features, 4096);
        assert_eq!(fcs[2].out_features, 1000);
    }
}

#[test]
fn squeezenet_structure_space_collapses_under_modularity() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = squeezenet(1, 1000, &mut rng);
    let structures = recover(&net, (227, 3), 1000);
    assert!(
        (4..=120).contains(&structures.len()),
        "SqueezeNet candidate count out of band: {}",
        structures.len()
    );
    // True stem present.
    let stem_found = structures.iter().any(|s| {
        let c = s.conv_layers()[0];
        c.f_conv == 7 && c.s_conv == 2 && c.pool.map(|p| (p.f, p.s)) == Some((3, 2))
    });
    assert!(stem_found, "true SqueezeNet stem missing");
    // Modularity assumption: fire modules (3 conv layers each, starting
    // after the stem) must share one geometry signature.
    let groups: Vec<Vec<usize>> = (0..3)
        .map(|role| (0..8).map(|module| 1 + 3 * module + role).collect())
        .collect();
    // Fire-module conv geometry identical across modules; the down-sampling
    // pools (both expand branches of fire4 and fire8) share one design.
    let pool_groups = vec![vec![8, 9, 20, 21]];
    let modular = filter_modular_pools(filter_modular(structures.clone(), &groups), &pool_groups);
    assert!(!modular.is_empty(), "modularity filter must keep the truth");
    assert!(
        modular.len() < structures.len(),
        "modularity should reduce the space: {} vs {}",
        modular.len(),
        structures.len()
    );
    // Paper: nine structures remain; we allow a small band around that.
    assert!(
        (2..=24).contains(&modular.len()),
        "modular SqueezeNet count out of band: {}",
        modular.len()
    );
}
