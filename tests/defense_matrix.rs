//! The defense matrix: which mitigations stop which attack, at what cost.
//!
//! * window shuffling — cheap, stops nothing;
//! * write padding — closes the §4 zero-count leak only;
//! * Path-ORAM — stops the §3 structure attack, at ~100× traffic.

use cnn_reveng::accel::{AccelConfig, Accelerator, RegionKind, Schedule};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::lenet;
use cnn_reveng::tensor::Tensor3;
use cnn_reveng::trace::defense::{obfuscate, pad_write_traffic, shuffle_within_window, OramConfig};
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};

#[test]
fn window_shuffling_disrupts_the_attack_only_probabilistically() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let cfg = NetworkSolverConfig::default();
    let baseline = recover_structures(&exec.trace, (32, 1), 10, &cfg)
        .expect("baseline attack")
        .len();
    // Tiny reorder windows: across a handful of trials the attack gets
    // through at least once — and when it does, it recovers the *full*
    // candidate set (the leak is not reduced, only sometimes garbled).
    let survived: Vec<usize> = (0..5u64)
        .filter_map(|seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            let shuffled = shuffle_within_window(&exec.trace, 2, &mut r);
            recover_structures(&shuffled, (32, 1), 10, &cfg)
                .ok()
                .map(|s| s.len())
        })
        .collect();
    assert!(
        !survived.is_empty(),
        "window-2 shuffling must not reliably stop the attack"
    );
    assert!(
        survived.iter().all(|&n| n == baseline),
        "surviving runs see the full leak"
    );
    // Larger reorder windows corrupt boundary inference for every trial.
    let large_all_fail = (0..5u64).all(|seed| {
        let mut r = SmallRng::seed_from_u64(seed);
        let shuffled = shuffle_within_window(&exec.trace, 16, &mut r);
        recover_structures(&shuffled, (32, 1), 10, &cfg).is_err()
    });
    assert!(
        large_all_fail,
        "a 16-deep reorder buffer disrupts the exact attack"
    );
}

#[test]
fn write_padding_closes_the_zero_count_leak_but_not_the_structure_leak() {
    let mut rng = SmallRng::seed_from_u64(1);
    let net = lenet(2, 10, &mut rng);
    let accel = Accelerator::new(AccelConfig::default().with_zero_pruning(true));
    let schedule = Schedule::plan(&net, accel.config()).expect("plan");
    let regions: Vec<(u64, u64)> = schedule
        .layout()
        .regions()
        .iter()
        .filter(|r| r.kind == RegionKind::FeatureMap)
        .map(|r| (r.base, r.len_bytes))
        .collect();

    // Two inputs with different activation sparsity leak different write
    // counts without the mitigation ...
    let x1 = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0));
    let x2 = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-0.2..1.5));
    let t1 = accel.run(&net, &x1).expect("run 1").trace;
    let t2 = accel.run(&net, &x2).expect("run 2").trace;
    assert_ne!(t1.write_count(), t2.write_count(), "the §4 leak exists");

    // ... and identical counts with it.
    let (p1, s1) = pad_write_traffic(&t1, &regions);
    let (p2, s2) = pad_write_traffic(&t2, &regions);
    assert_eq!(
        p1.write_count(),
        p2.write_count(),
        "leak closed: {s1:?} vs {s2:?}"
    );

    // The structure attack does not care about padding (it reads sizes and
    // RAW order, both preserved).
    let dense = Accelerator::new(AccelConfig::default());
    let trace = dense.run_trace_only(&net).expect("dense trace").trace;
    let (padded, _) = pad_write_traffic(&trace, &regions);
    let structures = recover_structures(&padded, (32, 1), 10, &NetworkSolverConfig::default())
        .expect("structure attack survives padding");
    assert!(!structures.is_empty());
}

#[test]
fn oram_stops_the_structure_attack() {
    let mut rng = SmallRng::seed_from_u64(2);
    let net = lenet(1, 10, &mut rng);
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let (protected, stats) = obfuscate(
        &exec.trace,
        OramConfig {
            logical_blocks: 1 << 14,
            bucket_blocks: 4,
        },
        &mut rng,
    );
    assert!(
        stats.overhead() > 50.0,
        "ORAM is expensive: {}",
        stats.overhead()
    );
    assert!(
        recover_structures(&protected, (32, 1), 10, &NetworkSolverConfig::default()).is_err(),
        "structure attack must fail under ORAM"
    );
}

#[test]
fn timing_jitter_alone_does_not_stop_the_structure_attack() {
    use cnn_reveng::trace::defense::jitter_timing;
    let mut rng = SmallRng::seed_from_u64(4);
    let net = lenet(1, 10, &mut rng);
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let cfg = NetworkSolverConfig::default();
    let baseline = recover_structures(&exec.trace, (32, 1), 10, &cfg)
        .expect("baseline")
        .len();
    // 15% multiplicative timing noise: the execution-time filter's margins
    // absorb it (the leak is in addresses, not in precise timing).
    let noisy = jitter_timing(&exec.trace, 0.15, &mut rng);
    let after = recover_structures(&noisy, (32, 1), 10, &cfg)
        .expect("attack survives timing noise")
        .len();
    assert!(after > 0);
    // The candidate set stays in the same ballpark.
    assert!(
        after <= 3 * baseline && 3 * after >= baseline,
        "{baseline} vs {after}"
    );
}
