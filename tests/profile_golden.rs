//! Golden-profile determinism gate: the cycle-domain exports of a profiled
//! golden LeNet pipeline run (trace generation + structure recovery) must
//! be byte-identical run to run, and the Chrome Trace export must match
//! the checked-in `tests/golden/lenet_profile.json`.
//!
//! Wall-clock timestamps vary per run by construction, so only the
//! cycle-domain exports ([`cnnre_obs::profile::ClockDomain::Cycles`]) are
//! pinned; the `both`-domain export is covered by the CLI smoke tests.
//!
//! Regenerate the golden after an intentional pipeline or exporter change:
//!
//! ```text
//! cargo test --test profile_golden -- --ignored regenerate_golden_profile
//! ```
//!
//! Both tests live in one `#[test]` body each and the harness runs this
//! binary's tests in-process: the profile ring is global, so the checking
//! test performs all of its runs itself rather than sharing state.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::lenet;
use cnnre_obs::profile::{chrome_trace, folded_stacks, ClockDomain, ProfileEvent};
use cnnre_tensor::rng::{SeedableRng, SmallRng};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lenet_profile.json")
}

/// Runs the golden pipeline (LeNet seed-0 trace + structure recovery) with
/// profiling on and returns the drained event stream.
fn profiled_run() -> Vec<ProfileEvent> {
    cnnre_obs::set_enabled(true);
    cnnre_obs::profile::set_enabled(true);
    cnnre_obs::profile::reset();
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &NetworkSolverConfig::default())
        .expect("structures recoverable");
    let events = cnnre_obs::profile::take();
    cnnre_obs::profile::set_enabled(false);
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    events
}

#[test]
fn cycle_domain_exports_are_deterministic_and_match_golden() {
    let first = profiled_run();
    let second = profiled_run();
    assert!(!first.is_empty(), "profiled run must record events");

    let trace_a = chrome_trace(&first, ClockDomain::Cycles);
    let trace_b = chrome_trace(&second, ClockDomain::Cycles);
    assert_eq!(
        trace_a, trace_b,
        "cycle-domain Chrome Trace export must be byte-deterministic"
    );
    let folded_a = folded_stacks(&first, ClockDomain::Cycles);
    let folded_b = folded_stacks(&second, ClockDomain::Cycles);
    assert_eq!(
        folded_a, folded_b,
        "cycle-domain flamegraph export must be byte-deterministic"
    );

    // The timeline covers both halves of the pipeline plus telemetry.
    assert!(trace_a.contains("accel.run_trace_only"), "accel span");
    assert!(trace_a.contains("attack.structure"), "solver span");
    assert!(trace_a.contains("conv1"), "labelled stage slice");
    assert!(
        trace_a.contains("solver.progress.candidates_per_layer"),
        "attack-progress counter samples"
    );

    let on_disk = std::fs::read_to_string(golden_path())
        .expect("golden profile exists; regenerate with the ignored test");
    assert!(
        on_disk == trace_a,
        "tests/golden/lenet_profile.json is stale: the pipeline or the \
         exporter now produces a different cycle-domain timeline; rerun \
         `cargo test --test profile_golden -- --ignored \
         regenerate_golden_profile` if the change is intentional"
    );
}

#[test]
#[ignore = "writes tests/golden/lenet_profile.json; run explicitly after intentional changes"]
fn regenerate_golden_profile() {
    let events = profiled_run();
    let rendered = chrome_trace(&events, ClockDomain::Cycles);
    std::fs::write(golden_path(), rendered).expect("golden profile written");
}
