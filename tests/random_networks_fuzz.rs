//! Fuzz the whole pipeline with randomly generated chain networks: for any
//! buildable network, the accelerator must execute it faithfully, the
//! trace analyzer must segment it into exactly its layers, and the
//! structure attack's candidate set must contain the true geometry.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::{chain, ConvSpec, PoolSpec};
use cnn_reveng::nn::Network;
use cnn_reveng::tensor::{Shape3, Tensor3};
use cnn_reveng::trace::observe::{observe, LayerKindHint};
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};

/// A drawn network: `(net, conv specs, (input width, channels), classes)`.
type DrawnChain = (Network, Vec<ConvSpec>, (usize, usize), usize);

/// Draws a random buildable conv chain (1–3 conv layers + 1–2 FCs).
fn random_chain(rng: &mut SmallRng) -> Option<DrawnChain> {
    let input_w = *[24usize, 32, 48]
        .iter()
        .filter(|_| true)
        .nth(rng.gen_range(0..3))?;
    let input_c = rng.gen_range(1..4);
    let n_convs = rng.gen_range(1..4);
    let mut specs = Vec::new();
    let mut w = input_w;
    for _ in 0..n_convs {
        let f = rng.gen_range(2usize..6).min(w / 2).max(1);
        let s = rng.gen_range(1..=f.min(2));
        let p = rng.gen_range(0..f.min(3));
        let w_conv = cnn_reveng::nn::geometry::conv_out(w, f, s, p)?;
        // Half the time, attach a halving pool.
        let pool = if rng.gen_bool(0.5) && w_conv >= 4 {
            let pf = rng.gen_range(2usize..4).min(w_conv);
            let ps = pf.min(2);
            let out = cnn_reveng::nn::geometry::pool_out(w_conv, pf, ps, 0)?;
            if 2 * out <= w_conv {
                w = out;
                Some(PoolSpec::max(pf, ps))
            } else {
                w = w_conv;
                None
            }
        } else {
            w = w_conv;
            None
        };
        let mut spec = ConvSpec::new(rng.gen_range(2..12), f, s, p);
        if let Some(pool) = pool {
            spec = spec.with_pool(pool);
        }
        specs.push(spec);
        if w < 4 {
            break;
        }
    }
    let classes = rng.gen_range(2..8);
    let fc_widths: Vec<usize> = if rng.gen_bool(0.5) {
        vec![rng.gen_range(8..32), classes]
    } else {
        vec![classes]
    };
    let net = chain(
        Shape3::new(input_c, input_w, input_w),
        &specs,
        &fc_widths,
        rng,
    )
    .ok()?;
    Some((net, specs, (input_w, input_c), classes))
}

#[test]
fn random_chains_survive_the_whole_pipeline() {
    let mut outer = SmallRng::seed_from_u64(2018);
    let mut attacked = 0;
    for trial in 0..24 {
        let mut rng = SmallRng::seed_from_u64(outer.gen());
        let Some((net, specs, input, classes)) = random_chain(&mut rng) else {
            continue;
        };

        // 1. Functional equivalence of the accelerator.
        let x = Tensor3::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0));
        let accel = Accelerator::new(AccelConfig::default());
        let exec = accel.run(&net, &x).expect("accelerator runs");
        assert_eq!(
            exec.output.as_ref(),
            Some(&net.forward(&x)),
            "trial {trial}"
        );

        // 2. Segmentation recovers exactly prologue + one segment per layer.
        let obs = observe(&exec.trace);
        let computes = obs
            .layers
            .iter()
            .filter(|l| l.kind == LayerKindHint::Compute)
            .count();
        let expected_layers = specs.len()
            + net
                .nodes()
                .iter()
                .filter(|n| matches!(n.op, cnn_reveng::nn::Op::Linear(_)))
                .count();
        assert_eq!(
            computes, expected_layers,
            "trial {trial}: segmentation miscounts"
        );

        // 3. The structure attack contains the truth (up to the padding
        //    representative).
        let structures = match recover_structures(
            &exec.trace,
            input,
            classes,
            &NetworkSolverConfig::default(),
        ) {
            Ok(s) => s,
            Err(e) => panic!("trial {trial}: attack failed: {e}"),
        };
        let found = structures.iter().any(|s| {
            let convs = s.conv_layers();
            convs.len() == specs.len()
                && convs.iter().zip(&specs).all(|(c, spec)| {
                    c.f_conv == spec.f
                        && c.s_conv == spec.s
                        && c.d_ofm == spec.d_ofm
                        && c.pool.map(|p| (p.f, p.s)) == spec.pool.map(|p| (p.f, p.s))
                        && cnn_reveng::nn::geometry::conv_out(c.w_ifm, spec.f, spec.s, spec.p)
                            == c.conv_out_w()
                })
        });
        if !found {
            eprintln!("trial {trial} specs:");
            for sp in &specs {
                eprintln!("  {sp:?}");
            }
            eprintln!("candidates:");
            for st in &structures {
                let line: Vec<String> = st.conv_layers().iter().map(|c| c.to_string()).collect();
                eprintln!("  {}", line.join(" | "));
            }
            panic!(
                "trial {trial}: truth missing among {} candidates",
                structures.len()
            );
        }
        attacked += 1;
    }
    assert!(
        attacked >= 16,
        "most random networks must be attackable ({attacked}/24)"
    );
}
