//! Drift gates for the metric catalogue (`cnnre_obs::catalog`):
//!
//! * every row of the catalogue's markdown rendering must appear verbatim
//!   in DESIGN.md §10 — the docs and `cnnre --list-metrics` share one
//!   static table, so adding a metric without documenting it fails here;
//! * the lint crate's duplicated prefix list (`cnnre-lint` is
//!   zero-dependency and cannot import the catalogue) must stay in
//!   lock-step with [`cnnre_obs::catalog::KNOWN_PREFIXES`];
//! * every catalogued name must satisfy the schema the `metric-name` lint
//!   rule enforces on recording call sites.

use cnnre_obs::catalog;

fn design_md() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md");
    std::fs::read_to_string(path).expect("DESIGN.md readable")
}

#[test]
fn design_md_contains_every_catalogue_row() {
    let doc = design_md();
    let table = catalog::render_markdown();
    for row in table.lines() {
        assert!(
            doc.contains(row),
            "DESIGN.md §10 is missing the catalogue row:\n  {row}\n\
             paste the full output of cnnre_obs::catalog::render_markdown()"
        );
    }
}

#[test]
fn lint_prefix_list_matches_the_catalogue() {
    assert_eq!(
        cnnre_lint::rules::METRIC_PREFIXES.as_slice(),
        catalog::KNOWN_PREFIXES,
        "cnnre-lint duplicates KNOWN_PREFIXES (it is zero-dependency); \
         update crates/lint/src/rules.rs::METRIC_PREFIXES"
    );
}

#[test]
fn every_catalogued_name_passes_the_schema() {
    for def in catalog::METRICS {
        assert!(
            catalog::valid_metric_name(def.name),
            "catalogue entry violates its own schema: {}",
            def.name
        );
    }
}

#[test]
#[ignore = "prints the markdown table for pasting into DESIGN.md §10"]
fn print_markdown_table() {
    print!("{}", catalog::render_markdown());
}
