//! Golden-replay determinism gate for the live attack-telemetry stream:
//! the `.evt` recording of the golden LeNet pipeline run (trace generation
//! plus structure recovery, the paper's Fig. 3 setting) must be
//! byte-identical run to run and match the checked-in
//! `tests/golden/lenet_events.evt`; the `cnnre-viz` renderings of that
//! recording (recovered-graph DOT and attack-progress timeline SVG) must
//! match their checked-in snapshots byte for byte.
//!
//! Regenerate all three goldens after an intentional protocol, pipeline,
//! or renderer change:
//!
//! ```text
//! cargo test --test events_golden -- --ignored regenerate_golden_events
//! ```
//!
//! The stream hub is global, so the checking test performs all of its
//! runs itself rather than sharing state across `#[test]` bodies.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::lenet;
use cnnre_obs::stream::{read_stream, EventPayload};
use cnnre_tensor::rng::{SeedableRng, SmallRng};
use cnnre_viz::{dot, timeline, ReplayState};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Runs the golden pipeline (LeNet seed-0 trace + structure recovery) with
/// event recording on and returns the recorded `.evt` bytes.
fn recorded_run() -> Vec<u8> {
    cnnre_obs::set_enabled(true);
    cnnre_obs::stream::reset();
    cnnre_obs::stream::set_enabled(true);
    cnnre_obs::stream::set_record(true);
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    let accel = Accelerator::new(AccelConfig::default());
    let exec = accel
        .run_trace_only(&net)
        .expect("LeNet lowers onto the accelerator");
    recover_structures(&exec.trace, (32, 1), 10, &NetworkSolverConfig::default())
        .expect("structures recoverable");
    let bytes = cnnre_obs::stream::take_recorded_bytes();
    cnnre_obs::stream::set_record(false);
    cnnre_obs::stream::set_enabled(false);
    cnnre_obs::stream::reset();
    cnnre_obs::set_enabled(false);
    cnnre_obs::global().reset();
    bytes
}

#[test]
fn recording_and_replay_are_byte_deterministic_and_match_goldens() {
    let first = recorded_run();
    let second = recorded_run();
    assert!(!first.is_empty(), "recorded run must produce events");
    assert_eq!(
        first, second,
        "the recorded event stream must be byte-deterministic"
    );

    let events = read_stream(first.as_slice()).expect("own recording decodes");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.payload, EventPayload::RunStarted { .. })),
        "run markers present"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.payload, EventPayload::LayerBoundary { .. })),
        "segmentation progress present"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.payload, EventPayload::CandidatesNarrowed { .. })),
        "solver progress present"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.payload, EventPayload::GraphConv { .. })),
        "recovered graph present"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.payload, EventPayload::RunFinished { .. })),
        "completion marker present"
    );

    let replay = ReplayState::from_events(&events);
    assert_eq!(replay.unknown_events, 0, "no forward-compat fallbacks");
    let graph = &replay
        .final_graph_run()
        .expect("a run carries the recovered graph")
        .graph;
    let dot_a = dot::render_dot(graph);
    let svg_a = timeline::render_timeline_svg(&replay);

    // The replay fold and renderers are pure functions of the decoded
    // events, so re-rendering the second recording checks the whole
    // record → decode → render chain for determinism.
    let replay_b = ReplayState::from_events(&read_stream(second.as_slice()).expect("decodes"));
    let graph_b = &replay_b.final_graph_run().expect("graph run").graph;
    assert_eq!(dot_a, dot::render_dot(graph_b), "DOT must be deterministic");
    assert_eq!(
        svg_a,
        timeline::render_timeline_svg(&replay_b),
        "timeline SVG must be deterministic"
    );

    let stale = "tests/golden/{} is stale: the pipeline, the wire format, or \
                 the renderer now produces different output; rerun `cargo test \
                 --test events_golden -- --ignored regenerate_golden_events` \
                 if the change is intentional";
    let on_disk = std::fs::read(golden_path("lenet_events.evt"))
        .expect("golden .evt exists; regenerate with the ignored test");
    assert!(
        on_disk == first,
        "{}",
        stale.replace("{}", "lenet_events.evt")
    );
    let on_disk = std::fs::read_to_string(golden_path("lenet_graph.dot"))
        .expect("golden DOT exists; regenerate with the ignored test");
    assert!(
        on_disk == dot_a,
        "{}",
        stale.replace("{}", "lenet_graph.dot")
    );
    let on_disk = std::fs::read_to_string(golden_path("lenet_timeline.svg"))
        .expect("golden timeline exists; regenerate with the ignored test");
    assert!(
        on_disk == svg_a,
        "{}",
        stale.replace("{}", "lenet_timeline.svg")
    );
}

#[test]
#[ignore = "writes the tests/golden/lenet_events.* snapshots; run explicitly after intentional changes"]
fn regenerate_golden_events() {
    let bytes = recorded_run();
    let events = read_stream(bytes.as_slice()).expect("own recording decodes");
    let replay = ReplayState::from_events(&events);
    let graph = &replay
        .final_graph_run()
        .expect("a run carries the recovered graph")
        .graph;
    std::fs::write(golden_path("lenet_events.evt"), &bytes).expect("golden .evt written");
    std::fs::write(golden_path("lenet_graph.dot"), dot::render_dot(graph))
        .expect("golden DOT written");
    std::fs::write(
        golden_path("lenet_timeline.svg"),
        timeline::render_timeline_svg(&replay),
    )
    .expect("golden timeline written");
}
