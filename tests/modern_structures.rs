//! Structure recovery on the modern architecture families §3 anticipates:
//! ResNet-style identity/projection bypasses and GoogLeNet-style inception
//! modules — beyond the paper's four case studies.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{
    recover_structures, NetworkSolverConfig, ObservedKind, ObservedNetwork,
};
use cnn_reveng::nn::models::{inception, resnet, InceptionSpec, ResNetSpec};
use cnn_reveng::trace::observe::observe;
use cnnre_tensor::rng::SeedableRng;
use cnnre_tensor::rng::SmallRng;

#[test]
fn resnet_bypasses_are_visible_and_structures_recoverable() {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = resnet(&ResNetSpec::small(1, 10), &mut rng).expect("resnet builds");
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let obs = observe(&exec.trace);
    let observed = ObservedNetwork::from_observations(&obs);
    // Two identity-shortcut blocks => two weightless merge layers; the two
    // projection blocks merge conv outputs (also weightless merges).
    let merges = observed
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, ObservedKind::Merge(_)))
        .count();
    assert_eq!(merges, 4, "one merge per residual block");
    // Identity merges read a non-adjacent producer (the bypass signature).
    let bypassing = observed
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| {
            matches!(n.kind, ObservedKind::Merge(_)) && n.sources.iter().any(|&s| s + 2 < *i)
        })
        .count();
    assert!(
        bypassing >= 2,
        "identity shortcuts skip at least two layers"
    );

    let structures = recover_structures(&exec.trace, (64, 3), 10, &NetworkSolverConfig::default())
        .expect("resnet structures");
    assert!(
        (1..=64).contains(&structures.len()),
        "candidate count out of band: {}",
        structures.len()
    );
    // The true stem (5x5/s1/p2 + 2x2 pool) is among the candidates.
    let stem_found = structures.iter().any(|s| {
        let c = s.conv_layers()[0];
        c.f_conv == 5 && c.s_conv == 1 && c.pool.map(|p| (p.f, p.s)) == Some((2, 2))
    });
    assert!(stem_found, "true ResNet stem missing");
    // Residual 3x3 body convs recovered in every candidate.
    for s in &structures {
        let threes = s
            .conv_layers()
            .iter()
            .filter(|c| c.f_conv == 3 && c.s_conv == 1)
            .count();
        assert!(threes >= 4, "residual body convs missing");
    }
}

#[test]
fn inception_concats_are_visible_and_structures_recoverable() {
    let mut rng = SmallRng::seed_from_u64(0);
    let spec = InceptionSpec::small(1, 10);
    let net = inception(&spec, &mut rng).expect("inception builds");
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let obs = observe(&exec.trace);
    let observed = ObservedNetwork::from_observations(&obs);
    // Each module's successor reads three producers' adjacent regions.
    let three_way = observed
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, ObservedKind::Compute(_)) && n.sources.len() == 3)
        .count();
    assert!(
        three_way >= 2,
        "three-branch concatenation not visible: {three_way}"
    );

    let structures = recover_structures(&exec.trace, (64, 3), 10, &NetworkSolverConfig::default())
        .expect("inception structures");
    // Every candidate's first module has heterogeneous filters (1, 3, 5).
    let m = spec.modules[0];
    let truth_found = structures.iter().any(|s| {
        let convs = s.conv_layers();
        convs.len() >= 4
            && convs[1..4].iter().any(|c| c.f_conv == 1 && c.d_ofm == m.b1)
            && convs[1..4].iter().any(|c| c.f_conv == 3 && c.d_ofm == m.b3)
            && convs[1..4].iter().any(|c| c.f_conv == 5 && c.d_ofm == m.b5)
    });
    assert!(
        truth_found,
        "heterogeneous inception branches not recovered"
    );
}

#[test]
fn vgg11_deep_homogeneous_chain_is_recoverable() {
    // VGG stresses the chain solver depth-wise: 8 locally-identical
    // 3x3/s1/p1 convolutions. Channels are divided by 8 so the trace stays
    // tractable; the geometry (224-wide input, five halving pools) is the
    // real thing.
    let mut rng = SmallRng::seed_from_u64(0);
    let net = cnn_reveng::nn::models::vgg11(8, 10, &mut rng);
    let exec = Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs");
    let structures = recover_structures(&exec.trace, (224, 3), 10, &NetworkSolverConfig::default())
        .expect("vgg structures");
    assert!(
        (1..=512).contains(&structures.len()),
        "candidate count out of band: {}",
        structures.len()
    );
    // The true structure is contained: every conv is 3x3/s1 with the right
    // depth and pooling placement.
    let scaled: Vec<usize> = cnn_reveng::nn::models::VGG11_CONV_SPECS
        .iter()
        .map(|s| s.d_ofm / 8)
        .collect();
    let truth_found = structures.iter().any(|s| {
        let convs = s.conv_layers();
        convs.len() == 8
            && convs.iter().zip(&scaled).all(|(c, &d)| {
                c.f_conv == 3 && c.s_conv == 1 && c.d_ofm == d && c.conv_out_w() == Some(c.w_ifm)
            })
            && convs.iter().enumerate().all(|(i, c)| {
                let pooled = matches!(i, 0 | 1 | 3 | 5 | 7);
                c.pool.is_some() == pooled
            })
    });
    assert!(
        truth_found,
        "true VGG-11 structure missing among {}",
        structures.len()
    );
}
