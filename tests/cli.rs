//! Integration tests of the `cnnre` command-line surface: every
//! subcommand parses, runs, and round-trips files as documented.

use std::process::Command;

fn cnnre() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cnnre"))
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_every_subcommand_and_model() {
    let out = cnnre().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    for needle in ["trace", "analyze", "attack-structure", "attack-weights", "defend"] {
        assert!(text.contains(needle), "usage missing {needle}");
    }
    for model in ["lenet", "convnet", "alexnet", "squeezenet", "vgg11", "resnet"] {
        assert!(text.contains(model), "usage missing model {model}");
    }
}

#[test]
fn unknown_command_and_model_fail_with_usage() {
    let out = cnnre().arg("frobnicate").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cnnre().args(["trace", "nonexistent-model"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cnnre().args(["trace", "lenet/notanumber"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_csv_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("lenet.csv");
    let csv_str = csv.to_str().expect("utf-8 path");

    let out = cnnre().args(["trace", "lenet", "--csv", csv_str]).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout_of(&out).contains("transactions"));

    let out = cnnre()
        .args(["analyze", csv_str, "--input", "32x1", "--classes", "10"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout_of(&out);
    assert!(text.contains("18 possible structures"), "{text}");

    // Without attack parameters, analyze still reports trace shape.
    let out = cnnre().args(["analyze", csv_str, "--stats"]).output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("footprint"), "{text}");

    std::fs::remove_file(&csv).ok();
}

#[test]
fn analyze_rejects_malformed_files() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("garbage.csv");
    std::fs::write(&bad, "this is not a trace\n1,2\n").expect("write");
    let out =
        cnnre().args(["analyze", bad.to_str().expect("utf-8")]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
    std::fs::remove_file(&bad).ok();

    let out = cnnre().args(["analyze", "/nonexistent/trace.csv"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn attack_structure_reports_candidates() {
    let out = cnnre().args(["attack-structure", "lenet"]).output().expect("runs");
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("18 possible structures"));
}

#[test]
fn attack_weights_reports_recovery() {
    let out = cnnre().args(["attack-weights", "--filters", "2"]).output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("recovered"), "{text}");
    assert!(text.contains("victim queries"), "{text}");
}

#[test]
fn defend_shows_the_oram_outcome() {
    let out = cnnre().args(["defend", "lenet"]).output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("Path-ORAM overhead"), "{text}");
    assert!(text.contains("attack FAILS") || text.contains("still recovers"), "{text}");
}
