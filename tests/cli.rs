//! Integration tests of the `cnnre` command-line surface: every
//! subcommand parses, runs, and round-trips files as documented.

use std::process::Command;

fn cnnre() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cnnre"))
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_every_subcommand_and_model() {
    let out = cnnre().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    for needle in [
        "trace",
        "analyze",
        "attack-structure",
        "attack-weights",
        "defend",
    ] {
        assert!(text.contains(needle), "usage missing {needle}");
    }
    for model in [
        "lenet",
        "convnet",
        "alexnet",
        "squeezenet",
        "vgg11",
        "resnet",
    ] {
        assert!(text.contains(model), "usage missing model {model}");
    }
}

#[test]
fn unknown_command_and_model_fail_with_usage() {
    let out = cnnre().arg("frobnicate").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cnnre()
        .args(["trace", "nonexistent-model"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cnnre()
        .args(["trace", "lenet/notanumber"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_csv_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("lenet.csv");
    let csv_str = csv.to_str().expect("utf-8 path");

    let out = cnnre()
        .args(["trace", "lenet", "--csv", csv_str])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout_of(&out).contains("transactions"));

    let out = cnnre()
        .args(["analyze", csv_str, "--input", "32x1", "--classes", "10"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout_of(&out);
    assert!(text.contains("18 possible structures"), "{text}");

    // Without attack parameters, analyze still reports trace shape.
    let out = cnnre()
        .args(["analyze", csv_str, "--stats"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("footprint"), "{text}");

    std::fs::remove_file(&csv).ok();
}

#[test]
fn analyze_rejects_malformed_files() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("garbage.csv");
    std::fs::write(&bad, "this is not a trace\n1,2\n").expect("write");
    let out = cnnre()
        .args(["analyze", bad.to_str().expect("utf-8")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
    std::fs::remove_file(&bad).ok();

    let out = cnnre()
        .args(["analyze", "/nonexistent/trace.csv"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn attack_structure_reports_candidates() {
    let out = cnnre()
        .args(["attack-structure", "lenet"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("18 possible structures"));
}

#[test]
fn attack_weights_reports_recovery() {
    let out = cnnre()
        .args(["attack-weights", "--filters", "2"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("recovered"), "{text}");
    assert!(text.contains("victim queries"), "{text}");
}

#[test]
fn defend_shows_the_oram_outcome() {
    let out = cnnre().args(["defend", "lenet"]).output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("Path-ORAM overhead"), "{text}");
    assert!(
        text.contains("attack FAILS") || text.contains("still recovers"),
        "{text}"
    );
}

#[test]
fn metrics_flag_writes_structure_attack_profile() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("structure-metrics.json");
    let path_str = path.to_str().expect("utf-8 path");

    let out = cnnre()
        .args(["attack-structure", "lenet", "--metrics", path_str])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&path).expect("metrics file written");
    assert!(
        json.trim_start().starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    for key in [
        "\"accel.dram.writes\":",
        "\"accel.dram.reads\":",
        "\"solver.candidates_per_layer\":",
        "\"solver.chain.structures_surviving\":",
        "\"trace.segment.events\":",
    ] {
        assert!(json.contains(key), "metrics missing {key}:\n{json}");
    }
    // Deterministic export: no wall-clock keys.
    assert!(!json.contains(".wall_ns"), "{json}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_flag_writes_weight_attack_profile() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("weights-metrics.json");
    let path_str = path.to_str().expect("utf-8 path");

    let out = cnnre()
        .args(["attack-weights", "--filters", "2", "--metrics", path_str])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&path).expect("metrics file written");
    for key in [
        "\"oracle.queries\":",
        "\"oracle.victim_queries\":",
        "\"weights.recovered\":",
        "\"weights.search.refine_steps\":",
    ] {
        assert!(json.contains(key), "metrics missing {key}:\n{json}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn identical_runs_write_byte_identical_metrics() {
    let dir = std::env::temp_dir().join("cnnre-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("metrics-a.json");
    let b = dir.join("metrics-b.json");

    for path in [&a, &b] {
        let out = cnnre()
            .args([
                "attack-structure",
                "lenet",
                "--metrics",
                path.to_str().expect("utf-8"),
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let first = std::fs::read(&a).expect("first metrics file");
    let second = std::fs::read(&b).expect("second metrics file");
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "identical seeded runs must export identical bytes"
    );
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn debug_logging_goes_to_stderr_without_corrupting_stdout() {
    // Baseline stdout with logging off.
    let quiet = cnnre()
        .args(["attack-structure", "lenet"])
        .env_remove("CNNRE_LOG")
        .output()
        .expect("runs");
    assert!(quiet.status.success());

    // CNNRE_LOG=debug must emit to stderr and leave stdout byte-identical.
    let verbose = cnnre()
        .args(["attack-structure", "lenet"])
        .env("CNNRE_LOG", "debug")
        .output()
        .expect("runs");
    assert!(verbose.status.success());
    let err = String::from_utf8_lossy(&verbose.stderr);
    assert!(
        err.contains("[DEBUG"),
        "expected debug lines on stderr, got: {err}"
    );
    assert_eq!(
        quiet.stdout, verbose.stdout,
        "logging must not corrupt stdout"
    );

    // The --log-level flag overrides the environment.
    let flagged = cnnre()
        .args(["attack-structure", "lenet", "--log-level", "off"])
        .env("CNNRE_LOG", "debug")
        .output()
        .expect("runs");
    assert!(flagged.status.success());
    assert!(
        !String::from_utf8_lossy(&flagged.stderr).contains("[DEBUG"),
        "--log-level off must silence CNNRE_LOG=debug"
    );

    let bad = cnnre()
        .args(["attack-structure", "lenet", "--log-level", "shouty"])
        .output()
        .expect("runs");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn list_metrics_prints_the_catalogue() {
    let out = cnnre().arg("--list-metrics").output().expect("runs");
    assert!(out.status.success());
    let text = stdout_of(&out);
    // Spot-check one entry per family plus the drop-accounting metric.
    for needle in [
        "oracle.queries",
        "solver.candidates_per_layer",
        "span.<path>.cycles",
        "profile.events.dropped",
    ] {
        assert!(text.contains(needle), "catalogue missing {needle}");
    }
}

#[test]
fn profile_out_writes_deterministic_cycle_domain_chrome_trace() {
    let dir = std::env::temp_dir().join("cnnre-cli-profile-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("profile-a.json");
    let b = dir.join("profile-b.json");

    for (i, path) in [&a, &b].into_iter().enumerate() {
        // First run via the `attack` alias, second via the full name:
        // both must dispatch to the same profiled pipeline.
        let cmd = if i == 0 { "attack" } else { "attack-structure" };
        let out = cnnre()
            .args([
                cmd,
                "lenet",
                "--profile-out",
                path.to_str().expect("utf-8"),
                "--profile-clock",
                "cycles",
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("profile written"), "got: {stderr}");
    }
    let first = std::fs::read_to_string(&a).expect("first profile");
    let second = std::fs::read_to_string(&b).expect("second profile");
    assert_eq!(
        first, second,
        "cycle-domain profiles of identical seeded runs must be byte-identical"
    );
    // Valid Chrome Trace shape: event array, span + counter + metadata
    // phases, the cycle track, and a labelled stage slice.
    assert!(first.starts_with("{\"traceEvents\":["));
    assert!(first.trim_end().ends_with("]}"));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"C\"",
        "\"ph\":\"M\"",
        "simulated accelerator cycles",
        "\"conv1\"",
        "solver.progress.candidates_per_layer",
    ] {
        assert!(first.contains(needle), "profile missing {needle}");
    }
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn profile_out_folded_extension_writes_flamegraph_stacks() {
    let dir = std::env::temp_dir().join("cnnre-cli-profile-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("profile.folded");
    let out = cnnre()
        .args([
            "attack",
            "lenet",
            "--profile-out",
            path.to_str().expect("utf-8"),
            "--profile-clock",
            "cycles",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let folded = std::fs::read_to_string(&path).expect("folded stacks");
    // stackcollapse format: `root;child;leaf <value>` lines.
    assert!(
        folded.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, v)| v.parse::<u64>().is_ok())),
        "got: {folded}"
    );
    assert!(folded.contains(";"), "got: {folded}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_clock_rejects_unknown_domain() {
    let out = cnnre()
        .args(["attack", "lenet", "--profile-clock", "lunar"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}
