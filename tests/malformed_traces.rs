//! Robustness of the attack pipeline against traces that are *not* clean
//! accelerator recordings: truncation, duplication, random noise, and
//! wrong attacker priors. The pipeline must fail with a typed error (or
//! an empty/implausible candidate set) — never panic, never fabricate a
//! confident wrong answer on garbage.

use cnn_reveng::accel::{AccelConfig, Accelerator};
use cnn_reveng::attacks::structure::{recover_structures, NetworkSolverConfig};
use cnn_reveng::nn::models::lenet;
use cnn_reveng::trace::{AccessKind, Trace, TraceBuilder};
use cnnre_tensor::rng::SmallRng;
use cnnre_tensor::rng::{Rng, SeedableRng};

fn lenet_trace() -> Trace {
    let mut rng = SmallRng::seed_from_u64(0);
    let net = lenet(1, 10, &mut rng);
    Accelerator::new(AccelConfig::default())
        .run_trace_only(&net)
        .expect("runs")
        .trace
}

#[test]
fn empty_trace_is_rejected_not_panicked() {
    let empty = TraceBuilder::new(64, 4).finish();
    let r = recover_structures(&empty, (32, 1), 10, &NetworkSolverConfig::default());
    assert!(r.is_err() || r.unwrap().is_empty());
}

#[test]
fn pure_noise_trace_does_not_panic() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut b = TraceBuilder::new(64, 4);
    let mut cycle = 0u64;
    for _ in 0..20_000 {
        cycle += rng.gen_range(1u64..5);
        let addr = u64::from(rng.gen_range(0u32..4096)) * 64;
        let kind = if rng.gen_bool(0.3) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        b.record(cycle, addr, kind);
    }
    // Any outcome but a panic is acceptable; a noise trace must not yield
    // a *large confident* candidate set for a 10-class LeNet interface.
    if let Ok(candidates) =
        recover_structures(&b.finish(), (32, 1), 10, &NetworkSolverConfig::default())
    {
        assert!(candidates.len() < 4, "{} on noise", candidates.len());
    }
}

#[test]
fn truncated_trace_fails_or_degrades_gracefully() {
    let trace = lenet_trace();
    let (events, block, elem) = trace.into_parts();
    // Keep only the first 40% — the FC layers and the classifier are gone.
    let cut = events.len() * 2 / 5;
    let truncated = Trace::from_parts(events[..cut].to_vec(), block, elem);
    // If anything is recovered it must be a *prefix*-shaped result; never
    // the full 4-layer LeNet.
    if let Ok(candidates) =
        recover_structures(&truncated, (32, 1), 10, &NetworkSolverConfig::default())
    {
        for c in &candidates {
            assert!(
                c.conv_layers().len() + c.fc_layers().len() < 4,
                "full structure from a truncated trace"
            );
        }
    }
}

#[test]
fn duplicated_segment_does_not_produce_the_original_structure() {
    let trace = lenet_trace();
    let (events, block, elem) = trace.clone().into_parts();
    // Replay the whole trace twice back-to-back (shifted in time and
    // address space) — like two inferences with a naive analyzer.
    let shift_cycle = events.last().expect("non-empty").cycle + 100;
    let mut doubled = events.clone();
    for ev in &events {
        let mut e2 = *ev;
        e2.cycle += shift_cycle;
        doubled.push(e2);
    }
    let doubled = Trace::from_parts(doubled, block, elem);
    let original =
        recover_structures(&trace, (32, 1), 10, &NetworkSolverConfig::default()).expect("clean");
    // The doubled trace describes an 8-layer network (the second inference
    // reads the first's leftovers) or fails; it must not equal the clean
    // 4-layer answer.
    if let Ok(candidates) =
        recover_structures(&doubled, (32, 1), 10, &NetworkSolverConfig::default())
    {
        assert_ne!(candidates, original);
    }
}

#[test]
fn wrong_input_prior_fails_cleanly() {
    let trace = lenet_trace();
    // The adversary misremembers the input interface: 224x224x3 instead of
    // 32x32x1. No consistent candidate should survive for CONV1.
    let r = recover_structures(&trace, (224, 3), 10, &NetworkSolverConfig::default());
    assert!(
        r.is_err() || r.as_ref().unwrap().is_empty(),
        "{:?}",
        r.map(|s| s.len())
    );
}

#[test]
fn wrong_class_count_prior_fails_cleanly() {
    let trace = lenet_trace();
    // 7000 classes cannot match the observed classifier footprint.
    let r = recover_structures(&trace, (32, 1), 7000, &NetworkSolverConfig::default());
    assert!(r.is_err() || r.as_ref().unwrap().is_empty());
}
