//! Tier-1 gate: the workspace itself must pass its own static analyzer.
//!
//! `cnnre-lint` enforces the invariants the attack pipeline depends on
//! (deterministic exports, panic-free library paths, sound geometry
//! casts, justified atomic orderings); a violation anywhere under the
//! workspace's `src/` trees fails this test with the full report.

use cnnre_lint::{lint_workspace, render_human};

#[test]
fn workspace_is_lint_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let report = lint_workspace(root.as_ref()).expect("workspace tree readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "cnnre-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        render_human(&report.diagnostics)
    );
}
