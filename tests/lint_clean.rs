//! Tier-1 gate: the workspace itself must pass its own static analyzer.
//!
//! `cnnre-lint` enforces the invariants the attack pipeline depends on
//! (deterministic exports, panic-free library paths, sound geometry
//! casts, justified atomic orderings); a violation anywhere under the
//! workspace's `src/` trees fails this test with the full report.

use cnnre_lint::{lint_workspace, lint_workspace_with, render_human};

#[test]
fn workspace_is_lint_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let report = lint_workspace(root.as_ref()).expect("workspace tree readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "cnnre-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        render_human(&report.diagnostics)
    );
}

#[test]
fn workspace_test_trees_are_lint_clean() {
    // The relaxed rule set (`--include-tests`) must also pass: tests,
    // benches, and examples may unwrap and compare floats exactly, but
    // must not read the wall clock or iterate hash maps.
    let root = env!("CARGO_MANIFEST_DIR");
    let full = lint_workspace_with(root.as_ref(), true).expect("workspace tree readable");
    let default = lint_workspace(root.as_ref()).expect("workspace tree readable");
    assert!(
        full.files_scanned > default.files_scanned,
        "--include-tests scanned no extra files ({} vs {}); test-tree discovery is broken",
        full.files_scanned,
        default.files_scanned
    );
    assert!(
        full.is_clean(),
        "cnnre-lint --include-tests found {} violation(s):\n{}",
        full.diagnostics.len(),
        render_human(&full.diagnostics)
    );
}
